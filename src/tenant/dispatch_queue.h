// Class-aware central dispatch buffer (docs/TENANTS.md).
//
// Both sim::Engine and serving::LiveTestbed buffer not-yet-dispatchable
// requests in one central queue and drain it head-blocking: try the front,
// stop on the first request that does not fit.  DispatchQueue keeps that
// exact contract while making "the front" class-aware:
//
//   * without a TenantClassTable (or with an empty one) it IS a FIFO deque —
//     operation-for-operation identical to the historical std::deque, which
//     the byte-identical golden traces pin;
//   * with a table it runs weighted deficit round-robin across per-class
//     FIFO queues: each class banks quantum proportional to its weight
//     whenever no class can afford its head, paying the head's token length
//     to dispatch, so long-run dispatch shares converge to the weights.
//     When several classes can afford their heads, the one whose head has
//     the least SLO slack (arrival + class slo - now) goes first — but only
//     among heads that can still make their SLO.  A head that is already
//     late has no meaningful deadline left; letting it outrank on-time work
//     would invert priorities under backlog (an aged best-effort queue
//     would starve interactive), so late heads dispatch only when no
//     on-time head affords, lowest class id first.
//
// Not thread-safe: the engine uses it from the sim loop, the testbed under
// its dispatch mutex — same discipline as the deque it replaces.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "tenant/class_table.h"

namespace arlo::tenant {

class DispatchQueue {
 public:
  /// `table` may be nullptr (single-class FIFO mode); when set it must
  /// outlive the queue.
  explicit DispatchQueue(const TenantClassTable* table = nullptr)
      : table_(table != nullptr && !table->Empty() ? table : nullptr) {
    const std::size_t classes =
        table_ != nullptr ? static_cast<std::size_t>(table_->Size()) : 1;
    queues_.resize(classes);
    deficit_.assign(classes, 0);
  }

  void PushBack(const Request& request) {
    const int cls =
        table_ != nullptr ? table_->Clamp(request.tenant_class) : 0;
    queues_[static_cast<std::size_t>(cls)].push_back(request);
    ++size_;
    selected_ = -1;
  }

  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }

  /// The request the dispatcher should try next.  `now` feeds the
  /// slack-aware tie-break; FIFO mode ignores it.  Only valid when
  /// !Empty(); the choice is pinned until PopFront/PushBack/RemoveIf.
  const Request& Front(SimTime now) {
    ARLO_CHECK(size_ > 0);
    if (selected_ < 0) selected_ = Select(now);
    return queues_[static_cast<std::size_t>(selected_)].front();
  }

  /// Pops the request the last Front() returned and charges its class.
  void PopFront() {
    ARLO_CHECK(selected_ >= 0);
    const std::size_t cls = static_cast<std::size_t>(selected_);
    std::deque<Request>& q = queues_[cls];
    deficit_[cls] -= Cost(q.front());
    q.pop_front();
    --size_;
    if (q.empty()) deficit_[cls] = 0;  // no banking while idle
    selected_ = -1;
  }

  /// Removes every request `pred` returns true for, visiting classes in id
  /// order and each class FIFO — in single-class mode this is exactly the
  /// historical front-to-back deque sweep.  `pred` may have side effects
  /// (the engine builds shed records in it).
  template <typename Pred>
  void RemoveIf(Pred pred) {
    for (std::deque<Request>& q : queues_) {
      for (auto it = q.begin(); it != q.end();) {
        if (pred(*it)) {
          it = q.erase(it);
          --size_;
        } else {
          ++it;
        }
      }
    }
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      if (queues_[c].empty()) deficit_[c] = 0;
    }
    selected_ = -1;
  }

  /// Requests buffered for one class (statusz / tests).
  std::size_t ClassDepth(int cls) const {
    if (cls < 0 || cls >= static_cast<int>(queues_.size())) return 0;
    return queues_[static_cast<std::size_t>(cls)].size();
  }

  /// Arrival time of the oldest buffered request for one class, or -1 when
  /// that class has nothing buffered.  `now - ClassHeadArrival(c)` is the
  /// class's current head-of-line queueing delay (the statusz export the
  /// cluster control plane watches).
  SimTime ClassHeadArrival(int cls) const {
    if (cls < 0 || cls >= static_cast<int>(queues_.size())) return -1;
    const std::deque<Request>& q = queues_[static_cast<std::size_t>(cls)];
    return q.empty() ? -1 : q.front().arrival;
  }

  const TenantClassTable* Table() const { return table_; }

 private:
  /// Dispatch cost of one request: its token length (floor 1 so zero-length
  /// requests still consume deficit).
  static std::int64_t Cost(const Request& request) {
    return request.length > 0 ? request.length : 1;
  }

  /// Deficit banked per top-up round: weight * this many tokens.
  static constexpr std::int64_t kQuantumTokens = 128;

  int Select(SimTime now) {
    if (table_ == nullptr) return 0;
    for (;;) {
      int best = -1;
      bool best_on_time = false;
      SimDuration best_slack = 0;
      for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
        const std::deque<Request>& q = queues_[static_cast<std::size_t>(c)];
        if (q.empty()) continue;
        if (deficit_[static_cast<std::size_t>(c)] < Cost(q.front())) continue;
        const SimDuration slack =
            q.front().arrival + table_->Class(c).slo - now;
        const bool on_time = slack >= 0;
        // On-time heads in least-slack order; late heads only when no
        // on-time head affords, lowest class id first (ascending scan
        // keeps the first late candidate).
        const bool better =
            best < 0 || (on_time && !best_on_time) ||
            (on_time && best_on_time && slack < best_slack);
        if (better) {
          best = c;
          best_on_time = on_time;
          best_slack = slack;
        }
      }
      if (best >= 0) return best;
      for (int c = 0; c < static_cast<int>(queues_.size()); ++c) {
        if (queues_[static_cast<std::size_t>(c)].empty()) continue;
        deficit_[static_cast<std::size_t>(c)] +=
            kQuantumTokens * table_->Class(c).weight;
      }
    }
  }

  const TenantClassTable* table_;          // nullptr = single-class FIFO
  std::vector<std::deque<Request>> queues_;  // index = class id
  std::vector<std::int64_t> deficit_;        // WDRR deficit per class
  std::size_t size_ = 0;
  int selected_ = -1;  ///< class chosen by the last Front(); -1 = stale
};

}  // namespace arlo::tenant
