#include "trace/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace arlo::trace {

std::vector<WindowLengthStats> WindowedLengthStats(const Trace& trace,
                                                   double window_s,
                                                   int max_length) {
  ARLO_CHECK(window_s > 0.0);
  std::vector<WindowLengthStats> out;
  const double duration_s = ToSeconds(trace.Duration());
  for (double start = 0.0; start < duration_s; start += window_s) {
    const Trace window =
        trace.Slice(Seconds(start), Seconds(start + window_s));
    WindowLengthStats stats;
    stats.start_s = start;
    stats.requests = window.Size();
    if (!window.Empty()) {
      const Histogram h = window.LengthHistogram(max_length);
      stats.median = h.Quantile(0.5);
      stats.p98 = h.Quantile(0.98);
    }
    out.push_back(stats);
  }
  return out;
}

double IndexOfDispersion(const Trace& trace) {
  if (trace.Empty()) return 0.0;
  const auto seconds =
      static_cast<std::size_t>(ToSeconds(trace.Duration())) + 1;
  std::vector<std::size_t> counts(seconds, 0);
  for (const auto& r : trace.Requests()) {
    ++counts[static_cast<std::size_t>(ToSeconds(r.arrival))];
  }
  double sum = 0.0, sq = 0.0;
  for (std::size_t c : counts) {
    sum += static_cast<double>(c);
    sq += static_cast<double>(c) * static_cast<double>(c);
  }
  const double n = static_cast<double>(counts.size());
  const double mean = sum / n;
  if (mean <= 0.0) return 0.0;
  const double var = sq / n - mean * mean;
  return var / mean;
}

double KsDistance(const Trace& a, const Trace& b, int max_length) {
  ARLO_CHECK(max_length >= 1);
  if (a.Empty() || b.Empty()) return a.Empty() == b.Empty() ? 0.0 : 1.0;
  const Histogram ha = a.LengthHistogram(max_length);
  const Histogram hb = b.LengthHistogram(max_length);
  double sup = 0.0;
  for (int v = 1; v <= max_length; ++v) {
    sup = std::max(sup, std::abs(ha.CdfAt(v) - hb.CdfAt(v)));
  }
  return sup;
}

double MaxAdjacentWindowDrift(const Trace& trace, double window_s,
                              int max_length) {
  ARLO_CHECK(window_s > 0.0);
  const double duration_s = ToSeconds(trace.Duration());
  double max_drift = 0.0;
  Trace prev = trace.Slice(0, Seconds(window_s));
  for (double start = window_s; start + window_s <= duration_s;
       start += window_s) {
    Trace cur = trace.Slice(Seconds(start), Seconds(start + window_s));
    if (!prev.Empty() && !cur.Empty()) {
      max_drift = std::max(max_drift, KsDistance(prev, cur, max_length));
    }
    prev = std::move(cur);
  }
  return max_drift;
}

double MeanPaddingWaste(const Trace& trace, int runtime_max_length,
                        double flops_linear_coeff, double flops_quad_coeff) {
  ARLO_CHECK(runtime_max_length >= 1);
  ARLO_CHECK(flops_linear_coeff >= 0.0 && flops_quad_coeff >= 0.0);
  if (trace.Empty()) return 0.0;
  auto flops = [&](int s) {
    return flops_linear_coeff * s + flops_quad_coeff * s * s;
  };
  const double padded = flops(runtime_max_length);
  double useful = 0.0;
  std::size_t counted = 0;
  for (const auto& r : trace.Requests()) {
    const int len = std::min(r.length, runtime_max_length);
    useful += flops(len);
    ++counted;
  }
  return 1.0 - useful / (padded * static_cast<double>(counted));
}

}  // namespace arlo::trace
