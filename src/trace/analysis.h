// Trace analytics: the statistics used to characterize workloads in §2.1
// and to validate synthesized traces against the paper's published numbers —
// per-window length quantiles, burstiness (index of dispersion), and
// distribution-drift detection (Kolmogorov–Smirnov distance between
// windows).
#pragma once

#include <vector>

#include "trace/trace.h"

namespace arlo::trace {

/// Length-quantile summary of one time window.
struct WindowLengthStats {
  double start_s = 0.0;
  std::size_t requests = 0;
  int median = 0;
  int p98 = 0;
};

/// Slices the trace into consecutive windows of `window_s` seconds and
/// reports each window's length quantiles (Fig. 1's per-window view).
std::vector<WindowLengthStats> WindowedLengthStats(const Trace& trace,
                                                   double window_s,
                                                   int max_length);

/// Index of dispersion of per-second arrival counts: variance/mean.  1 for
/// a Poisson process; >1 indicates burstiness (MMPP traces score higher).
double IndexOfDispersion(const Trace& trace);

/// Two-sample Kolmogorov–Smirnov distance between the length distributions
/// of two traces (sup |F1 - F2| over lengths).  0 = identical, 1 = disjoint.
double KsDistance(const Trace& a, const Trace& b, int max_length);

/// Largest KS distance between any consecutive pair of `window_s`-second
/// windows — a drift score: ~0 for a stationary mix, larger when the
/// short/long composition wanders (the §3.2 short-term inconsistency).
double MaxAdjacentWindowDrift(const Trace& trace, double window_s,
                              int max_length);

/// Mean padding-waste fraction if every request were served by a single
/// runtime of the given max_length (the §2.2 FLOPs-waste analysis; the
/// paper reports 80.6% waste for one clip at max_length 125).
double MeanPaddingWaste(const Trace& trace, int runtime_max_length,
                        double flops_linear_coeff, double flops_quad_coeff);

}  // namespace arlo::trace
