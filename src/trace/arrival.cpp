#include "trace/arrival.h"

#include <algorithm>

#include "common/check.h"

namespace arlo::trace {

void PoissonArrivals::GenerateSecond(SimTime tick_start, double rate, Rng& rng,
                                     std::vector<SimTime>& out) {
  ARLO_CHECK(rate >= 0.0);
  if (rate <= 0.0) return;
  double t = 0.0;  // seconds within the tick
  for (;;) {
    t += rng.Exponential(rate);
    if (t >= 1.0) break;
    out.push_back(tick_start + Seconds(t));
  }
}

MmppArrivals::MmppArrivals() : MmppArrivals(Params()) {}

MmppArrivals::MmppArrivals(Params params) : params_(params) {
  ARLO_CHECK(params_.calm_multiplier > 0.0);
  ARLO_CHECK(params_.burst_multiplier >= params_.calm_multiplier);
  ARLO_CHECK(params_.calm_mean_sojourn_s > 0.0);
  ARLO_CHECK(params_.burst_mean_sojourn_s > 0.0);
}

double MmppArrivals::MeanMultiplier() const {
  const double wc = params_.calm_mean_sojourn_s;
  const double wb = params_.burst_mean_sojourn_s;
  return (params_.calm_multiplier * wc + params_.burst_multiplier * wb) /
         (wc + wb);
}

void MmppArrivals::GenerateSecond(SimTime tick_start, double rate, Rng& rng,
                                  std::vector<SimTime>& out) {
  ARLO_CHECK(rate >= 0.0);
  if (!initialized_) {
    // Start in a random state with a fresh sojourn so traces do not all
    // begin with the same phase.
    in_burst_ = rng.Bernoulli(params_.burst_mean_sojourn_s /
                              (params_.calm_mean_sojourn_s +
                               params_.burst_mean_sojourn_s));
    time_to_switch_s_ = rng.Exponential(
        1.0 / (in_burst_ ? params_.burst_mean_sojourn_s
                         : params_.calm_mean_sojourn_s));
    initialized_ = true;
  }
  if (rate <= 0.0) {
    // Still advance the modulating chain through this silent second.
    double remaining = 1.0;
    while (time_to_switch_s_ <= remaining) {
      remaining -= time_to_switch_s_;
      in_burst_ = !in_burst_;
      time_to_switch_s_ = rng.Exponential(
          1.0 / (in_burst_ ? params_.burst_mean_sojourn_s
                           : params_.calm_mean_sojourn_s));
    }
    time_to_switch_s_ -= remaining;
    return;
  }

  // Normalize so the long-run mean equals `rate` regardless of multipliers.
  const double base = rate / MeanMultiplier();
  double t = 0.0;
  while (t < 1.0) {
    const double seg_end = std::min(1.0, t + time_to_switch_s_);
    const double mult = in_burst_ ? params_.burst_multiplier
                                  : params_.calm_multiplier;
    const double seg_rate = base * mult;
    // Poisson arrivals inside [t, seg_end) at seg_rate.
    double u = t;
    for (;;) {
      u += rng.Exponential(seg_rate);
      if (u >= seg_end) break;
      out.push_back(tick_start + Seconds(u));
    }
    time_to_switch_s_ -= (seg_end - t);
    t = seg_end;
    if (time_to_switch_s_ <= 1e-12) {
      in_burst_ = !in_burst_;
      time_to_switch_s_ = rng.Exponential(
          1.0 / (in_burst_ ? params_.burst_mean_sojourn_s
                           : params_.calm_mean_sojourn_s));
    }
  }
}

}  // namespace arlo::trace
