// Request arrival processes.
//
// The Twitter trace only carries per-second counts, so the paper generates
// intra-second arrivals with a stable pattern (Poisson) and a bursty
// pattern (Markov-modulated Poisson), named Twitter-Stable and
// Twitter-Bursty (§5 Workloads).  We implement both as continuous-time
// processes that emit arrival offsets for a target per-second rate.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace arlo::trace {

/// Emits arrival times within consecutive one-second ticks at a requested
/// mean rate.  Implementations keep internal state across ticks (MMPP phase
/// persists through the trace).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Appends the arrival times for one second starting at `tick_start`
  /// with the given mean rate (requests/second) to `out`.
  virtual void GenerateSecond(SimTime tick_start, double rate, Rng& rng,
                              std::vector<SimTime>& out) = 0;
};

/// Homogeneous Poisson: exponential inter-arrival gaps (Twitter-Stable).
class PoissonArrivals final : public ArrivalProcess {
 public:
  void GenerateSecond(SimTime tick_start, double rate, Rng& rng,
                      std::vector<SimTime>& out) override;
};

/// Two-state Markov-modulated Poisson process (Twitter-Bursty).  The
/// instantaneous rate is `rate * multiplier[state]`; the state alternates
/// with exponential sojourn times.  Defaults give a calm/burst mix with the
/// same long-run mean rate as the Poisson process (weighted multiplier = 1),
/// so Stable and Bursty traces are load-comparable.
class MmppArrivals final : public ArrivalProcess {
 public:
  struct Params {
    double calm_multiplier = 0.6;
    double burst_multiplier = 2.6;
    double calm_mean_sojourn_s = 4.0;
    double burst_mean_sojourn_s = 1.0;
  };

  MmppArrivals();
  explicit MmppArrivals(Params params);

  void GenerateSecond(SimTime tick_start, double rate, Rng& rng,
                      std::vector<SimTime>& out) override;

  /// Long-run average of the rate multiplier (sojourn-weighted).  Used by
  /// the synthesizer to normalize so mean load matches the nominal rate.
  double MeanMultiplier() const;

 private:
  Params params_;
  bool in_burst_ = false;
  double time_to_switch_s_ = 0.0;  // remaining sojourn in current state
  bool initialized_ = false;
};

}  // namespace arlo::trace
