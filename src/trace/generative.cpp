#include "trace/generative.h"

#include <stdexcept>
#include <vector>

namespace arlo::trace {
namespace {

std::shared_ptr<const LengthDistribution> MakeShort() {
  return std::make_shared<LognormalLength>(
      LognormalLength::FromQuantiles(32.0, 96.0, 0.98, 256));
}

std::shared_ptr<const LengthDistribution> MakeLong() {
  return std::make_shared<LognormalLength>(
      LognormalLength::FromQuantiles(128.0, 384.0, 0.98, 1024));
}

std::shared_ptr<const LengthDistribution> MakeMixed() {
  std::vector<MixtureLength::Component> parts;
  parts.push_back({0.65, MakeShort()});
  parts.push_back({0.35, MakeLong()});
  return std::make_shared<MixtureLength>(std::move(parts));
}

[[noreturn]] void Bad(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("bad --decode-len-dist '" + spec + "': " + why +
                              " (expected " + DecodeLengthDistNames() + ")");
}

/// Splits "name:a:b" into fields; validates the argument count.
std::vector<std::string> SplitFields(const std::string& spec) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (true) {
    const std::size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      fields.push_back(spec.substr(begin));
      return fields;
    }
    fields.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
}

int ParsePositiveInt(const std::string& spec, const std::string& field) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(field, &used);
    if (used != field.size() || v < 1) Bad(spec, "'" + field + "' is not a positive integer");
    return v;
  } catch (const std::invalid_argument&) {
    Bad(spec, "'" + field + "' is not a positive integer");
  } catch (const std::out_of_range&) {
    Bad(spec, "'" + field + "' is out of range");
  }
}

}  // namespace

std::string DecodeLengthDistNames() {
  return "short, long, mixed, const:N, uniform:LO:HI, lognormal:MED:P98:MAX";
}

std::shared_ptr<const LengthDistribution> ParseDecodeLengthDist(
    const std::string& spec) {
  if (spec == "short") return MakeShort();
  if (spec == "long") return MakeLong();
  if (spec == "mixed") return MakeMixed();
  const std::vector<std::string> fields = SplitFields(spec);
  if (fields[0] == "const") {
    if (fields.size() != 2) Bad(spec, "const takes exactly one argument");
    const int n = ParsePositiveInt(spec, fields[1]);
    std::vector<double> pmf(static_cast<std::size_t>(n), 0.0);
    pmf.back() = 1.0;
    return std::make_shared<EmpiricalLength>(std::move(pmf));
  }
  if (fields[0] == "uniform") {
    if (fields.size() != 3) Bad(spec, "uniform takes exactly two arguments");
    const int lo = ParsePositiveInt(spec, fields[1]);
    const int hi = ParsePositiveInt(spec, fields[2]);
    if (lo > hi) Bad(spec, "uniform bounds are inverted");
    std::vector<double> pmf(static_cast<std::size_t>(hi), 0.0);
    for (int v = lo; v <= hi; ++v) pmf[static_cast<std::size_t>(v - 1)] = 1.0;
    return std::make_shared<EmpiricalLength>(std::move(pmf));
  }
  if (fields[0] == "lognormal") {
    if (fields.size() != 4) Bad(spec, "lognormal takes exactly three arguments");
    const int median = ParsePositiveInt(spec, fields[1]);
    const int p98 = ParsePositiveInt(spec, fields[2]);
    const int max = ParsePositiveInt(spec, fields[3]);
    if (median >= p98) Bad(spec, "median must be below the p98 quantile");
    if (p98 > max) Bad(spec, "p98 must not exceed the maximum");
    return std::make_shared<LognormalLength>(LognormalLength::FromQuantiles(
        static_cast<double>(median), static_cast<double>(p98), 0.98, max));
  }
  Bad(spec, "unknown distribution '" + fields[0] + "'");
}

}  // namespace arlo::trace
