// Decode-length distributions for generative (autoregressive) traces.
//
// A generative request is (prefill_len, decode_len): the prompt length comes
// from the existing Twitter length model, the output length from one of the
// distributions parsed here.  The spec grammar (the --decode-len-dist flag):
//
//   short                  lognormal, median 32 / p98 96, max 256
//   long                   lognormal, median 128 / p98 384, max 1024
//   mixed                  0.65 short + 0.35 long (chatbot-style tail)
//   const:N                every request decodes exactly N tokens
//   uniform:LO:HI          integer-uniform in [LO, HI]
//   lognormal:MED:P98:MAX  truncated lognormal from two quantiles
//
// See docs/GENERATIVE.md.
#pragma once

#include <memory>
#include <string>

#include "trace/length_distribution.h"

namespace arlo::trace {

/// Parses a --decode-len-dist spec.  Throws std::invalid_argument with a
/// stable (golden-tested) message naming the bad spec and the grammar.
std::shared_ptr<const LengthDistribution> ParseDecodeLengthDist(
    const std::string& spec);

/// The named presets, comma-joined, for help text and error messages.
std::string DecodeLengthDistNames();

}  // namespace arlo::trace
