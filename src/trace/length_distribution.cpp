#include "trace/length_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace arlo::trace {
namespace {

/// Standard normal CDF.
double Phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Inverse standard normal CDF via bisection on Phi (setup-only code; we
/// prefer 20 obviously-correct iterations over a rational approximation).
double PhiInverse(double p) {
  ARLO_CHECK(p > 0.0 && p < 1.0);
  double lo = -10.0, hi = 10.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    (Phi(mid) < p ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

/// CDF of the calibrated two-lognormal mixture at x.
double MixtureCdf(double x, double w_long, double mu_s, double mu_l,
                  double sigma) {
  const double lx = std::log(x);
  return (1.0 - w_long) * Phi((lx - mu_s) / sigma) +
         w_long * Phi((lx - mu_l) / sigma);
}

}  // namespace

Histogram LengthDistribution::SampleHistogram(Rng& rng, std::size_t n) const {
  Histogram h(MaxLength());
  for (std::size_t i = 0; i < n; ++i) h.Add(Sample(rng));
  return h;
}

LognormalLength::LognormalLength(double mu, double sigma, int max_length)
    : mu_(mu), sigma_(sigma), max_length_(max_length) {
  ARLO_CHECK(sigma > 0.0);
  ARLO_CHECK(max_length >= 1);
}

int LognormalLength::Sample(Rng& rng) const {
  const double x = rng.LogNormal(mu_, sigma_);
  return std::clamp(static_cast<int>(std::lround(x)), 1, max_length_);
}

LognormalLength LognormalLength::FromQuantiles(double median, double q_hi,
                                               double p_hi, int max_length) {
  ARLO_CHECK(median > 0.0 && q_hi > median);
  ARLO_CHECK(p_hi > 0.5 && p_hi < 1.0);
  const double mu = std::log(median);
  const double z = PhiInverse(p_hi);
  const double sigma = (std::log(q_hi) - mu) / z;
  return LognormalLength(mu, sigma, max_length);
}

MixtureLength::MixtureLength(std::vector<Component> components)
    : components_(std::move(components)) {
  ARLO_CHECK(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    ARLO_CHECK(c.weight >= 0.0);
    ARLO_CHECK(c.dist != nullptr);
    total += c.weight;
    max_length_ = std::max(max_length_, c.dist->MaxLength());
  }
  ARLO_CHECK(total > 0.0);
  for (auto& c : components_) c.weight /= total;
}

int MixtureLength::Sample(Rng& rng) const {
  double draw = rng.NextDouble();
  for (const auto& c : components_) {
    if (draw < c.weight) return c.dist->Sample(rng);
    draw -= c.weight;
  }
  return components_.back().dist->Sample(rng);  // numerical slack
}

void MixtureLength::SetWeights(const std::vector<double>& weights) {
  ARLO_CHECK(weights.size() == components_.size());
  double total = 0.0;
  for (double w : weights) {
    ARLO_CHECK(w >= 0.0);
    total += w;
  }
  ARLO_CHECK(total > 0.0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i].weight = weights[i] / total;
  }
}

EmpiricalLength::EmpiricalLength(std::vector<double> pmf) {
  ARLO_CHECK(!pmf.empty());
  cdf_.resize(pmf.size());
  double running = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    ARLO_CHECK(pmf[i] >= 0.0);
    running += pmf[i];
    cdf_[i] = running;
  }
  ARLO_CHECK(running > 0.0);
  for (double& c : cdf_) c /= running;
}

EmpiricalLength EmpiricalLength::FromHistogram(const Histogram& h) {
  std::vector<double> pmf(static_cast<std::size_t>(h.MaxValue()), 0.0);
  for (int v = 1; v <= h.MaxValue(); ++v) {
    pmf[static_cast<std::size_t>(v - 1)] =
        static_cast<double>(h.CountAt(v));
  }
  return EmpiricalLength(std::move(pmf));
}

int EmpiricalLength::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

RescaledLength::RescaledLength(std::shared_ptr<const LengthDistribution> base,
                               double factor, int max_length)
    : base_(std::move(base)), factor_(factor), max_length_(max_length) {
  ARLO_CHECK(base_ != nullptr);
  ARLO_CHECK(factor > 0.0);
  ARLO_CHECK(max_length >= 1);
}

int RescaledLength::Sample(Rng& rng) const {
  const double scaled = factor_ * static_cast<double>(base_->Sample(rng));
  return std::clamp(static_cast<int>(std::lround(scaled)), 1, max_length_);
}

std::shared_ptr<MixtureLength> MakeTwitterLengthModel(double long_weight) {
  ARLO_CHECK(long_weight > 0.0 && long_weight < 1.0);
  constexpr int kMaxLen = 125;
  constexpr double kTargetMedian = 21.0;  // §2.1: 50%ile of Twitter lengths
  constexpr double kTargetP98 = 72.0;     // §2.1: 98%ile
  constexpr double kSeparation = 0.9;     // log-space gap short → long

  // Nested bisection: for a trial sigma, place mu_s so the mixture median is
  // exact, then tighten sigma until the 98th percentile is exact too.  Both
  // relationships are monotone, so bisection converges unconditionally.
  double sig_lo = 0.05, sig_hi = 2.0;
  double mu_s = std::log(kTargetMedian);
  for (int outer = 0; outer < 60; ++outer) {
    const double sigma = 0.5 * (sig_lo + sig_hi);
    double mu_lo = std::log(kTargetMedian) - 3.0;
    double mu_hi = std::log(kTargetMedian) + 1.0;
    for (int inner = 0; inner < 60; ++inner) {
      mu_s = 0.5 * (mu_lo + mu_hi);
      const double cdf = MixtureCdf(kTargetMedian, long_weight, mu_s,
                                    mu_s + kSeparation, sigma);
      (cdf > 0.5 ? mu_lo : mu_hi) = mu_s;  // larger mu shifts mass right
    }
    const double p98 = MixtureCdf(kTargetP98, long_weight, mu_s,
                                  mu_s + kSeparation, sigma);
    // Larger sigma fattens the tail, lowering the CDF at the target point.
    (p98 > 0.98 ? sig_lo : sig_hi) = sigma;
  }
  const double sigma = 0.5 * (sig_lo + sig_hi);

  std::vector<MixtureLength::Component> components;
  components.push_back(
      {1.0 - long_weight,
       std::make_shared<LognormalLength>(mu_s, sigma, kMaxLen)});
  components.push_back(
      {long_weight,
       std::make_shared<LognormalLength>(mu_s + kSeparation, sigma, kMaxLen)});
  return std::make_shared<MixtureLength>(std::move(components));
}

std::shared_ptr<const LengthDistribution> MakeTwitter512LengthModel() {
  // §5 Workloads: the Twitter trace caps at ~125 tokens; the paper
  // recalibrates the distribution to span up to 512.  We apply the same
  // linear stretch (512/125).
  return std::make_shared<RescaledLength>(MakeTwitterLengthModel(),
                                          512.0 / 125.0, 512);
}

}  // namespace arlo::trace
