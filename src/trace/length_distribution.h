// Request-length distributions.
//
// The paper drives every experiment with Twitter's production trace, whose
// text data we do not have.  We substitute a synthetic model calibrated to
// all published statistics of that trace (§2.1, §5): median length 21
// tokens, 98th percentile 72, maximum ≈125; and a "recalibrated"
// variant stretched to max length 512 for the main experiments, exactly as
// the authors recalibrate the real trace.  See DESIGN.md (substitution
// table).
#pragma once

#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

namespace arlo::trace {

/// Abstract sampler of integer token lengths in [1, MaxLength()].
class LengthDistribution {
 public:
  virtual ~LengthDistribution() = default;

  virtual int Sample(Rng& rng) const = 0;
  virtual int MaxLength() const = 0;

  /// Convenience: draw n samples into a histogram (tests, calibration).
  Histogram SampleHistogram(Rng& rng, std::size_t n) const;
};

/// Truncated log-normal: round(exp(N(mu, sigma))), clamped to [1, max].
class LognormalLength final : public LengthDistribution {
 public:
  LognormalLength(double mu, double sigma, int max_length);

  int Sample(Rng& rng) const override;
  int MaxLength() const override { return max_length_; }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  /// Solves (mu, sigma) so the continuous log-normal hits the two target
  /// quantiles exactly: P(X <= median) = 0.5 and P(X <= q_hi) = p_hi.
  static LognormalLength FromQuantiles(double median, double q_hi,
                                       double p_hi, int max_length);

 private:
  double mu_;
  double sigma_;
  int max_length_;
};

/// Weighted mixture of component distributions.  Used to model the
/// short-vs-long tweet populations whose mix drifts over time (Fig. 1).
class MixtureLength final : public LengthDistribution {
 public:
  struct Component {
    double weight;
    std::shared_ptr<const LengthDistribution> dist;
  };

  explicit MixtureLength(std::vector<Component> components);

  int Sample(Rng& rng) const override;
  int MaxLength() const override { return max_length_; }

  /// Re-weights components in place (weights re-normalized).  Used by the
  /// time-varying model to drift the short/long mix.
  void SetWeights(const std::vector<double>& weights);

  std::size_t NumComponents() const { return components_.size(); }

 private:
  std::vector<Component> components_;
  int max_length_ = 0;
};

/// Samples from a fixed per-length probability mass function (e.g. a
/// measured histogram).  Inversion via a precomputed CDF; O(log n) sample.
class EmpiricalLength final : public LengthDistribution {
 public:
  /// pmf[i] is the (unnormalized) mass of length i+1.
  explicit EmpiricalLength(std::vector<double> pmf);

  /// Builds from a histogram of observed lengths.
  static EmpiricalLength FromHistogram(const Histogram& h);

  int Sample(Rng& rng) const override;
  int MaxLength() const override { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(length <= i+1)
};

/// Linearly rescales another distribution's samples by `factor`, clamping to
/// [1, max_length].  This is the paper's "recalibrate the sentence length
/// distribution to span up to a maximum length of 512" (§5 Workloads).
class RescaledLength final : public LengthDistribution {
 public:
  RescaledLength(std::shared_ptr<const LengthDistribution> base, double factor,
                 int max_length);

  int Sample(Rng& rng) const override;
  int MaxLength() const override { return max_length_; }

 private:
  std::shared_ptr<const LengthDistribution> base_;
  double factor_;
  int max_length_;
};

/// The calibrated Twitter length model (max 125): a two-component
/// log-normal mixture whose aggregate matches median 21 / p98 72.
/// `long_weight` sets the share of the long-form component; the default 0.25
/// reproduces the published quantiles (verified in tests).
std::shared_ptr<MixtureLength> MakeTwitterLengthModel(
    double long_weight = 0.25);

/// The recalibrated model spanning [1, 512] used in the main experiments.
std::shared_ptr<const LengthDistribution> MakeTwitter512LengthModel();

}  // namespace arlo::trace
