#include "trace/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace arlo::trace {

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests)) {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    requests_[i].id = i;
    ARLO_CHECK_MSG(requests_[i].length >= 1, "request length must be >= 1");
  }
}

SimTime Trace::Duration() const {
  return requests_.empty() ? 0 : requests_.back().arrival;
}

double Trace::MeanRate() const {
  const SimTime d = Duration();
  if (d <= 0) return 0.0;
  return static_cast<double>(requests_.size()) / ToSeconds(d);
}

Histogram Trace::LengthHistogram(int max_length) const {
  Histogram h(max_length);
  for (const auto& r : requests_) h.Add(r.length);
  return h;
}

Trace Trace::Slice(SimTime begin, SimTime end) const {
  std::vector<Request> slice;
  for (const auto& r : requests_) {
    if (r.arrival >= begin && r.arrival < end) slice.push_back(r);
  }
  return Trace(std::move(slice));
}

void Trace::Append(const Trace& other, SimDuration gap) {
  const SimTime offset = Duration() + gap;
  for (Request r : other.requests_) {
    r.arrival += offset;
    requests_.push_back(r);
  }
  for (std::size_t i = 0; i < requests_.size(); ++i) requests_[i].id = i;
}

bool Trace::IsGenerative() const {
  return std::any_of(requests_.begin(), requests_.end(),
                     [](const Request& r) { return r.decode_len >= 1; });
}

bool Trace::IsMultiTenant() const {
  return std::any_of(requests_.begin(), requests_.end(),
                     [](const Request& r) { return r.tenant_class > 0; });
}

void Trace::SaveCsv(std::ostream& os) const {
  // Column width is uniform across the file: 3 for one-shot single-tenant
  // traces (the historical shape), 4 when generative, 5 when multi-tenant
  // (decode_len is emitted even if all-zero so `class` is always column 5).
  const bool tenants = IsMultiTenant();
  const bool generative = tenants || IsGenerative();
  os << "id,arrival_ns,length";
  if (generative) os << ",decode_len";
  if (tenants) os << ",class";
  os << '\n';
  for (const auto& r : requests_) {
    os << r.id << ',' << r.arrival << ',' << r.length;
    if (generative) os << ',' << r.decode_len;
    if (tenants) os << ',' << r.tenant_class;
    os << '\n';
  }
}

Trace Trace::LoadCsv(std::istream& is) {
  std::vector<Request> requests;
  std::string line;
  bool first = true;
  std::size_t width = 0;  // column count, fixed by the first data row
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("id,", 0) == 0) continue;  // header (any shape)
    }
    std::size_t cols = 1;
    for (const char c : line) {
      if (c == ',') ++cols;
    }
    if (width == 0) {
      if (cols < 3 || cols > 5) {
        throw std::invalid_argument("trace CSV: line '" + line + "' has " +
                                    std::to_string(cols) +
                                    " columns, want 3, 4, or 5");
      }
      width = cols;
    } else if (cols != width) {
      throw std::invalid_argument(
          "trace CSV: mixed column widths: line '" + line + "' has " +
          std::to_string(cols) + " columns, file started with " +
          std::to_string(width));
    }
    std::istringstream ls(line);
    Request r;
    char comma = 0;
    ls >> r.id >> comma >> r.arrival >> comma >> r.length;
    ARLO_CHECK_MSG(!ls.fail(), "malformed trace CSV line: " + line);
    if (width >= 4) {
      ls >> comma >> r.decode_len;
      ARLO_CHECK_MSG(!ls.fail(), "malformed trace CSV line: " + line);
      ARLO_CHECK_MSG(r.decode_len >= 0, "negative decode_len: " + line);
    }
    if (width >= 5) {
      ls >> comma >> r.tenant_class;
      ARLO_CHECK_MSG(!ls.fail(), "malformed trace CSV line: " + line);
      ARLO_CHECK_MSG(r.tenant_class >= 0, "negative class: " + line);
    }
    requests.push_back(r);
  }
  return Trace(std::move(requests));
}

}  // namespace arlo::trace
