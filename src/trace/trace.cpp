#include "trace/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace arlo::trace {

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests)) {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    requests_[i].id = i;
    ARLO_CHECK_MSG(requests_[i].length >= 1, "request length must be >= 1");
  }
}

SimTime Trace::Duration() const {
  return requests_.empty() ? 0 : requests_.back().arrival;
}

double Trace::MeanRate() const {
  const SimTime d = Duration();
  if (d <= 0) return 0.0;
  return static_cast<double>(requests_.size()) / ToSeconds(d);
}

Histogram Trace::LengthHistogram(int max_length) const {
  Histogram h(max_length);
  for (const auto& r : requests_) h.Add(r.length);
  return h;
}

Trace Trace::Slice(SimTime begin, SimTime end) const {
  std::vector<Request> slice;
  for (const auto& r : requests_) {
    if (r.arrival >= begin && r.arrival < end) slice.push_back(r);
  }
  return Trace(std::move(slice));
}

void Trace::Append(const Trace& other, SimDuration gap) {
  const SimTime offset = Duration() + gap;
  for (Request r : other.requests_) {
    r.arrival += offset;
    requests_.push_back(r);
  }
  for (std::size_t i = 0; i < requests_.size(); ++i) requests_[i].id = i;
}

bool Trace::IsGenerative() const {
  return std::any_of(requests_.begin(), requests_.end(),
                     [](const Request& r) { return r.decode_len >= 1; });
}

void Trace::SaveCsv(std::ostream& os) const {
  const bool generative = IsGenerative();
  if (generative) {
    os << "id,arrival_ns,length,decode_len\n";
  } else {
    os << "id,arrival_ns,length\n";
  }
  for (const auto& r : requests_) {
    os << r.id << ',' << r.arrival << ',' << r.length;
    if (generative) os << ',' << r.decode_len;
    os << '\n';
  }
}

Trace Trace::LoadCsv(std::istream& is) {
  std::vector<Request> requests;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("id,", 0) == 0) continue;  // header (either shape)
    }
    std::istringstream ls(line);
    Request r;
    char comma = 0;
    ls >> r.id >> comma >> r.arrival >> comma >> r.length;
    ARLO_CHECK_MSG(!ls.fail(), "malformed trace CSV line: " + line);
    if (ls >> comma >> r.decode_len) {
      ARLO_CHECK_MSG(r.decode_len >= 0, "negative decode_len: " + line);
    } else {
      r.decode_len = 0;
    }
    requests.push_back(r);
  }
  return Trace(std::move(requests));
}

}  // namespace arlo::trace
