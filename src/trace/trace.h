// Trace container: an arrival-ordered sequence of requests plus utilities
// to slice, summarize, and (de)serialize it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace arlo::trace {

/// An immutable-ish request trace.  Invariant: requests are sorted by
/// arrival time and ids are unique.
class Trace {
 public:
  Trace() = default;
  /// Sorts by arrival and assigns sequential ids (overwriting any present).
  explicit Trace(std::vector<Request> requests);

  const std::vector<Request>& Requests() const { return requests_; }
  std::size_t Size() const { return requests_.size(); }
  bool Empty() const { return requests_.empty(); }

  /// Time span covered: last arrival (0 for an empty trace).
  SimTime Duration() const;

  /// Average arrival rate in requests/second over Duration().
  double MeanRate() const;

  /// Histogram of request lengths with the given max value.
  Histogram LengthHistogram(int max_length) const;

  /// Sub-trace with arrivals in [begin, end); arrival times are preserved
  /// (not re-based) so windows remain comparable.
  Trace Slice(SimTime begin, SimTime end) const;

  /// Concatenates another trace shifted to start after this one ends.
  void Append(const Trace& other, SimDuration gap = 0);

  /// True iff any request has a decode phase (decode_len >= 1).
  bool IsGenerative() const;

  /// True iff any request belongs to a non-default tenant class.
  bool IsMultiTenant() const;

  /// CSV round-trip with a header line.  One-shot single-tenant traces
  /// serialize as the historical "id,arrival_ns,length" (byte-identical to
  /// pre-generative builds); generative traces append a decode_len column,
  /// multi-tenant traces a fifth `class` column.  LoadCsv accepts all three
  /// shapes but requires one uniform column width per file — mixed-width
  /// files fail with a stable error.
  void SaveCsv(std::ostream& os) const;
  static Trace LoadCsv(std::istream& is);

 private:
  std::vector<Request> requests_;
};

}  // namespace arlo::trace
