#include "trace/twitter.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "trace/arrival.h"
#include "trace/length_distribution.h"

namespace arlo::trace {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kBaseLongWeight = 0.25;  // matches MakeTwitterLengthModel

}  // namespace

double RateTrack::MeanRate() const {
  if (per_second.empty()) return 0.0;
  double sum = 0.0;
  for (double r : per_second) sum += r;
  return sum / static_cast<double>(per_second.size());
}

double RateTrack::PeakRate() const {
  double peak = 0.0;
  for (double r : per_second) peak = std::max(peak, r);
  return peak;
}

RateTrack MakeConstantTrack(double rate, double duration_s, double noise_frac,
                            std::uint64_t seed) {
  ARLO_CHECK(rate >= 0.0 && duration_s > 0.0);
  Rng rng(seed);
  RateTrack track;
  track.per_second.reserve(static_cast<std::size_t>(duration_s));
  for (double t = 0.0; t < duration_s; t += 1.0) {
    const double jitter =
        noise_frac > 0.0 ? rng.Uniform(-noise_frac, noise_frac) : 0.0;
    track.per_second.push_back(std::max(0.0, rate * (1.0 + jitter)));
  }
  return track;
}

RateTrack MakeSinusoidTrack(double rate, double duration_s, double amp_frac,
                            double period_s) {
  ARLO_CHECK(rate >= 0.0 && duration_s > 0.0 && period_s > 0.0);
  RateTrack track;
  track.per_second.reserve(static_cast<std::size_t>(duration_s));
  for (double t = 0.0; t < duration_s; t += 1.0) {
    const double factor = 1.0 + amp_frac * std::sin(2.0 * kPi * t / period_s);
    track.per_second.push_back(std::max(0.0, rate * factor));
  }
  return track;
}

RateTrack MakeSpikyTrack(double rate, double duration_s, double spike_factor,
                         double spike_len_s, double spike_every_s,
                         std::uint64_t seed) {
  ARLO_CHECK(spike_factor >= 1.0 && spike_len_s > 0.0 && spike_every_s > 0.0);
  RateTrack track =
      MakeSinusoidTrack(rate, duration_s, 0.3, spike_every_s * 2.5);
  Rng rng(seed);
  double next_spike = rng.Uniform(0.0, spike_every_s);
  while (next_spike < duration_s) {
    const auto begin = static_cast<std::size_t>(next_spike);
    const auto end = std::min(
        track.per_second.size(),
        begin + static_cast<std::size_t>(std::max(1.0, spike_len_s)));
    for (std::size_t i = begin; i < end; ++i) {
      track.per_second[i] *= spike_factor;
    }
    next_spike += spike_every_s * rng.Uniform(0.6, 1.4);
  }
  return track;
}

Trace SynthesizeTwitterTrace(const TwitterTraceConfig& config) {
  ARLO_CHECK(config.duration_s > 0.0);
  ARLO_CHECK(config.max_length == 125 || config.max_length == 512);

  Rng root(config.seed);
  Rng arrivals_rng = root.Split();
  Rng lengths_rng = root.Split();
  Rng drift_rng = root.Split();
  // Dedicated stream: sampling (or not sampling) decode lengths must not
  // perturb arrivals or prefill lengths for a fixed seed.
  Rng decode_rng = root.Split();
  // Tenant streams split strictly after the base four, and are only drawn
  // from when tenant tracks are configured — single-tenant traces stay
  // byte-identical at equal seed.  One stream picks classes; each class
  // gets its own length/decode override streams so editing one track never
  // perturbs another's samples.
  ARLO_CHECK_MSG(config.tenants.size() <= 8, "at most 8 tenant tracks");
  Rng class_rng = root.Split();
  std::vector<Rng> tenant_length_rng;
  std::vector<Rng> tenant_decode_rng;
  double tenant_total = 0.0;
  for (const TwitterTraceConfig::TenantTrack& track : config.tenants) {
    tenant_length_rng.push_back(root.Split());
    tenant_decode_rng.push_back(root.Split());
    ARLO_CHECK_MSG(track.fraction >= 0.0, "negative tenant fraction");
    tenant_total += track.fraction;
  }
  ARLO_CHECK_MSG(config.tenants.empty() || tenant_total > 0.0,
                 "tenant fractions must sum to > 0");

  // Length model: a drifting two-component mixture; when max_length is 512
  // the samples are rescaled as in §5 Workloads.
  auto mixture = MakeTwitterLengthModel(kBaseLongWeight);
  std::shared_ptr<const LengthDistribution> sampler = mixture;
  if (config.max_length == 512) {
    sampler = std::make_shared<RescaledLength>(mixture, 512.0 / 125.0, 512);
  }

  std::unique_ptr<ArrivalProcess> arrivals;
  if (config.pattern == TwitterTraceConfig::Pattern::kBursty) {
    arrivals = std::make_unique<MmppArrivals>();
  } else {
    arrivals = std::make_unique<PoissonArrivals>();
  }

  RateTrack track = config.rate_track;
  if (track.per_second.empty()) {
    track = MakeConstantTrack(config.mean_rate, config.duration_s);
  }

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(
      track.MeanRate() * config.duration_s * 1.2));

  std::vector<SimTime> second_arrivals;
  const auto ticks = static_cast<std::size_t>(config.duration_s);
  for (std::size_t tick = 0; tick < std::min(ticks, track.per_second.size());
       ++tick) {
    // Drift the short/long mix once per second.
    const double t = static_cast<double>(tick);
    double w_long =
        kBaseLongWeight *
        (1.0 + config.drift_amplitude *
                   std::sin(2.0 * kPi * t / config.drift_period_s));
    if (config.drift_noise > 0.0) {
      w_long += kBaseLongWeight *
                drift_rng.Uniform(-config.drift_noise, config.drift_noise);
    }
    w_long = std::clamp(w_long, 0.02, 0.9);
    mixture->SetWeights({1.0 - w_long, w_long});

    second_arrivals.clear();
    arrivals->GenerateSecond(Seconds(t), track.per_second[tick],
                             arrivals_rng, second_arrivals);
    for (SimTime at : second_arrivals) {
      Request r;
      r.arrival = at;
      r.length = sampler->Sample(lengths_rng);
      if (config.decode_lengths) {
        r.decode_len = config.decode_lengths->Sample(decode_rng);
      }
      if (!config.tenants.empty()) {
        // Pick the class by normalized rate fraction, then apply its
        // per-class overrides from that class's dedicated streams.
        const double u = class_rng.Uniform(0.0, tenant_total);
        double acc = 0.0;
        int cls = static_cast<int>(config.tenants.size()) - 1;
        for (std::size_t c = 0; c < config.tenants.size(); ++c) {
          acc += config.tenants[c].fraction;
          if (u < acc) {
            cls = static_cast<int>(c);
            break;
          }
        }
        r.tenant_class = cls;
        const TwitterTraceConfig::TenantTrack& track =
            config.tenants[static_cast<std::size_t>(cls)];
        if (track.lengths) {
          r.length = track.lengths->Sample(
              tenant_length_rng[static_cast<std::size_t>(cls)]);
        }
        if (track.decode_lengths) {
          r.decode_len = track.decode_lengths->Sample(
              tenant_decode_rng[static_cast<std::size_t>(cls)]);
        }
      }
      requests.push_back(r);
    }
  }
  return Trace(std::move(requests));
}

}  // namespace arlo::trace
