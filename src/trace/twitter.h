// Synthesizer for Twitter-Stable and Twitter-Bursty workload traces.
//
// Reproduces the workload construction of §5: per-second request counts
// following a rate track, intra-second arrivals from a Poisson (Stable) or
// MMPP (Bursty) process, and lengths drawn from the calibrated Twitter
// distribution — with a slowly drifting short/long mix so that short-window
// length distributions deviate from the long-term one exactly as Fig. 1
// shows (10-min p98 = 71–72 vs 10-s p98 ≈ 58).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace.h"

namespace arlo::trace {

class LengthDistribution;

/// Per-second nominal request rates.
struct RateTrack {
  std::vector<double> per_second;  // requests/second for each tick

  double MeanRate() const;
  double PeakRate() const;
};

/// Flat load with optional small multiplicative noise.
RateTrack MakeConstantTrack(double rate, double duration_s,
                            double noise_frac = 0.0, std::uint64_t seed = 1);

/// Slow sinusoidal load: rate * (1 + amp * sin(2*pi*t/period)).
RateTrack MakeSinusoidTrack(double rate, double duration_s, double amp_frac,
                            double period_s);

/// Highly varying load for the auto-scaling experiment (Fig. 8): a sinusoid
/// plus randomly placed spike windows that multiply the rate.
RateTrack MakeSpikyTrack(double rate, double duration_s, double spike_factor,
                         double spike_len_s, double spike_every_s,
                         std::uint64_t seed);

struct TwitterTraceConfig {
  enum class Pattern { kStable, kBursty };

  double duration_s = 60.0;
  double mean_rate = 1000.0;          ///< requests/second (nominal)
  Pattern pattern = Pattern::kStable;
  int max_length = 512;               ///< 125 = raw Twitter, 512 = recalibrated
  std::uint64_t seed = 42;

  /// Short/long mixture drift: the long-form weight follows
  ///   w(t) = base * (1 + amplitude * sin(2*pi*t/period)) + per-second noise.
  /// Zero amplitude disables drift (long- and short-term CDFs coincide).
  double drift_amplitude = 0.5;
  double drift_period_s = 300.0;
  double drift_noise = 0.1;

  /// Optional externally supplied rate track; when empty a constant track at
  /// mean_rate is used.
  RateTrack rate_track;

  /// Generative workloads: when set, each request additionally samples a
  /// decode_len from this distribution (see trace/generative.h).  The decode
  /// sampler draws from its own RNG stream, so for a fixed seed the arrival
  /// times and prefill lengths are identical with and without it — a
  /// generative trace is the one-shot trace plus output lengths.  Null (the
  /// default) produces the historical one-shot trace, byte-identical.
  std::shared_ptr<const LengthDistribution> decode_lengths;

  /// One per-class traffic track for multi-tenant workloads
  /// (docs/TENANTS.md).  The track index is the tenant class id.
  struct TenantTrack {
    /// Fraction of arrivals tagged with this class; fractions are
    /// normalized over their sum (which must be > 0).
    double fraction = 0.0;
    /// Optional per-class prompt-length override; null keeps the base
    /// Twitter length draw for this class.
    std::shared_ptr<const LengthDistribution> lengths;
    /// Optional per-class decode-length override; null keeps the base
    /// `decode_lengths` draw (or one-shot when that is null too).
    std::shared_ptr<const LengthDistribution> decode_lengths;
  };
  /// Empty (the default) = the historical single-tenant trace.  The class
  /// picks and every per-class override sample each draw from their own
  /// dedicated RNG streams, split *after* the base streams — so a
  /// single-tenant trace at a given seed is byte-identical with this field
  /// empty or absent, and editing one class's mix never perturbs another's.
  std::vector<TenantTrack> tenants;
};

/// Generates a full trace per the config.  Deterministic in `seed`.
Trace SynthesizeTwitterTrace(const TwitterTraceConfig& config);

}  // namespace arlo::trace
