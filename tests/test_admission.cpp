#include "net/admission.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace arlo::net {
namespace {

TEST(Admission, DefaultConfigAdmitsEverything) {
  AdmissionController admission{AdmissionConfig{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(admission.Admit(/*now=*/0, /*estimated_queue_delay=*/Seconds(10.0),
                              /*deadline=*/0),
              AdmissionDecision::kAdmit);
  }
  EXPECT_EQ(admission.Inflight(), 1000);
}

TEST(Admission, TokenBucketLimitsBurstThenRefills) {
  AdmissionConfig config;
  config.rate_limit = 10.0;  // 10 req/s
  config.burst = 5.0;
  AdmissionController admission{config};

  // The bucket starts full: exactly `burst` requests pass at t=0.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit) << i;
  }
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kRejectRate);

  // 100 ms at 10 req/s refills exactly one token.
  const SimTime t1 = Millis(100.0);
  EXPECT_EQ(admission.Admit(t1, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(t1, 0, 0), AdmissionDecision::kRejectRate);

  // A long idle period refills to capacity, never beyond.
  const SimTime t2 = Seconds(100.0);
  EXPECT_NEAR(admission.TokensForTest(), 0.0, 1e-9);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(admission.Admit(t2, 0, 0), AdmissionDecision::kAdmit) << i;
  }
  EXPECT_EQ(admission.Admit(t2, 0, 0), AdmissionDecision::kRejectRate);
}

TEST(Admission, BurstDefaultsToOneSecondOfTokens) {
  AdmissionConfig config;
  config.rate_limit = 50.0;  // burst unset -> capacity 50
  AdmissionController admission{config};
  int admitted = 0;
  for (int i = 0; i < 60; ++i) {
    if (admission.Admit(0, 0, 0) == AdmissionDecision::kAdmit) ++admitted;
  }
  EXPECT_EQ(admitted, 50);
}

TEST(Admission, InflightCapRejectsUntilCompletionsFreeSlots) {
  AdmissionConfig config;
  config.max_inflight = 2;
  AdmissionController admission{config};

  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kRejectInflight);
  EXPECT_EQ(admission.Inflight(), 2);

  admission.OnRequestDone();
  EXPECT_EQ(admission.Inflight(), 1);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kRejectInflight);
}

TEST(Admission, DeadlineShedComparesEstimateAgainstBudget) {
  AdmissionController admission{AdmissionConfig{}};

  // Estimated delay beyond the budget: shed.
  EXPECT_EQ(admission.Admit(0, Millis(200.0), Millis(150.0)),
            AdmissionDecision::kShedDeadline);
  // Estimated delay within the budget: admit.
  EXPECT_EQ(admission.Admit(0, Millis(100.0), Millis(150.0)),
            AdmissionDecision::kAdmit);
  // No deadline (0) is never shed, whatever the estimate.
  EXPECT_EQ(admission.Admit(0, Seconds(100.0), 0),
            AdmissionDecision::kAdmit);
}

TEST(Admission, DeadlineShedCanBeDisabled) {
  AdmissionConfig config;
  config.deadline_reject = false;
  AdmissionController admission{config};
  EXPECT_EQ(admission.Admit(0, Seconds(100.0), Millis(1.0)),
            AdmissionDecision::kAdmit);
}

TEST(Admission, GatesAreCheckedInOrderAndRejectionsConsumeNothing) {
  AdmissionConfig config;
  config.rate_limit = 100.0;
  config.burst = 2.0;
  config.max_inflight = 1;
  AdmissionController admission{config};

  // First request admits, consuming a token and the only inflight slot.
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)), AdmissionDecision::kAdmit);
  EXPECT_NEAR(admission.TokensForTest(), 1.0, 1e-9);

  // Second is inflight-rejected — and must NOT burn the remaining token.
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)),
            AdmissionDecision::kRejectInflight);
  EXPECT_NEAR(admission.TokensForTest(), 1.0, 1e-9);

  // After completion the token is still there for the next admit.
  admission.OnRequestDone();
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)), AdmissionDecision::kAdmit);
  EXPECT_NEAR(admission.TokensForTest(), 0.0, 1e-9);

  // Bucket now empty: the rate gate fires before the inflight gate.
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)),
            AdmissionDecision::kRejectRate);
}

}  // namespace
}  // namespace arlo::net
