#include "net/admission.h"

#include <gtest/gtest.h>

#include "common/types.h"
#include "tenant/class_table.h"

namespace arlo::net {
namespace {

TEST(Admission, DefaultConfigAdmitsEverything) {
  AdmissionController admission{AdmissionConfig{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(admission.Admit(/*now=*/0, /*estimated_queue_delay=*/Seconds(10.0),
                              /*deadline=*/0),
              AdmissionDecision::kAdmit);
  }
  EXPECT_EQ(admission.Inflight(), 1000);
}

TEST(Admission, TokenBucketLimitsBurstThenRefills) {
  AdmissionConfig config;
  config.rate_limit = 10.0;  // 10 req/s
  config.burst = 5.0;
  AdmissionController admission{config};

  // The bucket starts full: exactly `burst` requests pass at t=0.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit) << i;
  }
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kRejectRate);

  // 100 ms at 10 req/s refills exactly one token.
  const SimTime t1 = Millis(100.0);
  EXPECT_EQ(admission.Admit(t1, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(t1, 0, 0), AdmissionDecision::kRejectRate);

  // A long idle period refills to capacity, never beyond.
  const SimTime t2 = Seconds(100.0);
  EXPECT_NEAR(admission.TokensForTest(), 0.0, 1e-9);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(admission.Admit(t2, 0, 0), AdmissionDecision::kAdmit) << i;
  }
  EXPECT_EQ(admission.Admit(t2, 0, 0), AdmissionDecision::kRejectRate);
}

TEST(Admission, BurstDefaultsToOneSecondOfTokens) {
  AdmissionConfig config;
  config.rate_limit = 50.0;  // burst unset -> capacity 50
  AdmissionController admission{config};
  int admitted = 0;
  for (int i = 0; i < 60; ++i) {
    if (admission.Admit(0, 0, 0) == AdmissionDecision::kAdmit) ++admitted;
  }
  EXPECT_EQ(admitted, 50);
}

TEST(Admission, InflightCapRejectsUntilCompletionsFreeSlots) {
  AdmissionConfig config;
  config.max_inflight = 2;
  AdmissionController admission{config};

  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kRejectInflight);
  EXPECT_EQ(admission.Inflight(), 2);

  admission.OnRequestDone();
  EXPECT_EQ(admission.Inflight(), 1);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kRejectInflight);
}

TEST(Admission, DeadlineShedComparesEstimateAgainstBudget) {
  AdmissionController admission{AdmissionConfig{}};

  // Estimated delay beyond the budget: shed.
  EXPECT_EQ(admission.Admit(0, Millis(200.0), Millis(150.0)),
            AdmissionDecision::kShedDeadline);
  // Estimated delay within the budget: admit.
  EXPECT_EQ(admission.Admit(0, Millis(100.0), Millis(150.0)),
            AdmissionDecision::kAdmit);
  // No deadline (0) is never shed, whatever the estimate.
  EXPECT_EQ(admission.Admit(0, Seconds(100.0), 0),
            AdmissionDecision::kAdmit);
}

TEST(Admission, DeadlineShedCanBeDisabled) {
  AdmissionConfig config;
  config.deadline_reject = false;
  AdmissionController admission{config};
  EXPECT_EQ(admission.Admit(0, Seconds(100.0), Millis(1.0)),
            AdmissionDecision::kAdmit);
}

TEST(Admission, GatesAreCheckedInOrderAndRejectionsConsumeNothing) {
  AdmissionConfig config;
  config.rate_limit = 100.0;
  config.burst = 2.0;
  config.max_inflight = 1;
  AdmissionController admission{config};

  // First request admits, consuming a token and the only inflight slot.
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)), AdmissionDecision::kAdmit);
  EXPECT_NEAR(admission.TokensForTest(), 1.0, 1e-9);

  // Second is inflight-rejected — and must NOT burn the remaining token.
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)),
            AdmissionDecision::kRejectInflight);
  EXPECT_NEAR(admission.TokensForTest(), 1.0, 1e-9);

  // After completion the token is still there for the next admit.
  admission.OnRequestDone();
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)), AdmissionDecision::kAdmit);
  EXPECT_NEAR(admission.TokensForTest(), 0.0, 1e-9);

  // Bucket now empty: the rate gate fires before the inflight gate.
  EXPECT_EQ(admission.Admit(0, 0, Millis(10.0)),
            AdmissionDecision::kRejectRate);
}

// ---------------------------------------------------------------------------
// Weighted-fair per-class admission (tenant::TenantClassTable loaded).

TEST(TenantAdmission, RateBudgetSplitsIntoWeightedBuckets) {
  // rate 4, burst 4, weights 3:1 -> capacities hi=3, lo=1.
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("hi:w3:slo100,lo:w1:slo100");
  AdmissionConfig config;
  config.rate_limit = 4.0;
  config.burst = 4.0;
  config.tenants = &table;
  AdmissionController admission{config};

  // lo spends its own single token; the lowest class has no one below it
  // to borrow from.
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kRejectRate);

  // hi's own bucket holds exactly 3 — and lo's token is already gone, so
  // there is nothing left to raid.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kAdmit) << i;
  }
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kRejectRate);
}

TEST(TenantAdmission, HigherPriorityBorrowsDownwardNeverUpward) {
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("hi:w3:slo100,lo:w1:slo100");
  AdmissionConfig config;
  config.rate_limit = 4.0;
  config.burst = 4.0;
  config.tenants = &table;
  AdmissionController admission{config};

  // hi drains its own 3 tokens, then raids lo's spare one.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kAdmit) << i;
  }
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kRejectRate);
  // The raid consumed lo's budget: strict priority starves the bottom.
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kRejectRate);
  EXPECT_NEAR(admission.TokensForTest(1), 0.0, 1e-9);
}

TEST(TenantAdmission, ShedPolicyAnswersShedClassOnExhaustion) {
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("a:w1:slo100,b:w1:slo100:shed");
  AdmissionConfig config;
  config.rate_limit = 2.0;
  config.burst = 2.0;
  config.tenants = &table;
  AdmissionController admission{config};

  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kAdmit);
  // b is exhausted: its policy turns the retryable reject into a drop.
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kShedClass);
  // a keeps the default retryable status.
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kRejectRate);
}

TEST(TenantAdmission, InflightCapsReserveHeadroomForHigherClasses) {
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("hi:w1:slo100,lo:w1:slo100");
  AdmissionConfig config;
  config.max_inflight = 4;  // caps: 2 + 2
  config.tenants = &table;
  AdmissionController admission{config};

  // lo fills its own cap, then may not grow into hi's reserved slots.
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kRejectInflight);
  EXPECT_EQ(admission.InflightForClass(1), 2);

  // hi claims the reserved headroom; at the total cap everyone is refused.
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kRejectInflight);
  EXPECT_EQ(admission.Inflight(), 4);

  // A lo completion frees a lo slot.
  admission.OnRequestDone(1);
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kAdmit);
}

TEST(TenantAdmission, TopClassBorrowsInflightBeyondItsCap) {
  // Class 0 has no higher class to reserve for, so it may grow beyond its
  // own cap as long as the total bound holds.
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("hi:w1:slo100,lo:w3:slo100");
  AdmissionConfig config;
  config.max_inflight = 4;  // caps: hi=1, lo=3
  config.tenants = &table;
  AdmissionController admission{config};

  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.InflightForClass(0), 2);  // cap was 1
}

TEST(TenantAdmission, InflightExhaustionHonorsShedPolicy) {
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("a:w1:slo100,b:w1:slo100:shed");
  AdmissionConfig config;
  config.max_inflight = 2;  // caps: 1 + 1
  config.tenants = &table;
  AdmissionController admission{config};

  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 1), AdmissionDecision::kShedClass);
}

TEST(TenantAdmission, RequestsInheritTheirClassSloAsDeadline) {
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("a:w1:slo50");
  AdmissionConfig config;
  config.tenants = &table;
  AdmissionController admission{config};

  // No explicit deadline: the 50 ms class SLO gates the estimate.
  EXPECT_EQ(admission.Admit(0, Millis(60.0), 0, 0),
            AdmissionDecision::kShedDeadline);
  EXPECT_EQ(admission.Admit(0, Millis(40.0), 0, 0),
            AdmissionDecision::kAdmit);
  // An explicit deadline still takes precedence over the class SLO.
  EXPECT_EQ(admission.Admit(0, Millis(60.0), Millis(100.0), 0),
            AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, Millis(60.0), Millis(55.0), 0),
            AdmissionDecision::kShedDeadline);
}

TEST(TenantAdmission, ClassSloDeadlineRespectsDisabledGate) {
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("a:w1:slo50");
  AdmissionConfig config;
  config.deadline_reject = false;
  config.tenants = &table;
  AdmissionController admission{config};
  EXPECT_EQ(admission.Admit(0, Seconds(10.0), 0, 0),
            AdmissionDecision::kAdmit);
}

TEST(TenantAdmission, UnknownClassIdsClampToClassZero) {
  const tenant::TenantClassTable table =
      tenant::TenantClassTable::Parse("a:w1:slo100,b:w1:slo100");
  AdmissionConfig config;
  config.max_inflight = 4;
  config.tenants = &table;
  AdmissionController admission{config};
  EXPECT_EQ(admission.Admit(0, 0, 0, 9), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.InflightForClass(0), 1);
  admission.OnRequestDone(9);
  EXPECT_EQ(admission.InflightForClass(0), 0);
}

TEST(TenantAdmission, EmptyTableKeepsTheSingleClassPath) {
  const tenant::TenantClassTable empty;
  AdmissionConfig config;
  config.rate_limit = 2.0;
  config.burst = 2.0;
  config.tenants = &empty;
  AdmissionController admission{config};
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0, 5), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 0), AdmissionDecision::kRejectRate);
}

}  // namespace
}  // namespace arlo::net
