#include "solver/allocation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "common/rng.h"

namespace arlo::solver {
namespace {

using arlo::runtime::RuntimeProfile;

RuntimeProfile MakeProfile(RuntimeId id, int max_length, double compute_ms,
                           double slo_ms) {
  RuntimeProfile p;
  p.id = id;
  p.max_length = max_length;
  p.compute_time = arlo::Millis(compute_ms);
  p.capacity_within_slo = static_cast<int>(slo_ms / compute_ms);
  return p;
}

/// Three runtimes: compute 1/2/4 ms, SLO 20 ms → capacities 20/10/5.
AllocationProblem MakeProblem(int gpus, std::vector<double> demand) {
  AllocationProblem p;
  p.gpus = gpus;
  p.demand = std::move(demand);
  p.profiles = {MakeProfile(0, 64, 1.0, 20.0), MakeProfile(1, 128, 2.0, 20.0),
                MakeProfile(2, 256, 4.0, 20.0)};
  return p;
}

/// Brute force over all allocations with sum == G, N_i >= floor(Q_i/M_i),
/// N_last >= 1 (Eqs. 2, 3, 7).
double BruteForceOptimum(const AllocationProblem& p) {
  const std::size_t n = p.NumRuntimes();
  std::vector<int> lb(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    lb[i] = static_cast<int>(p.demand[i] / p.profiles[i].capacity_within_slo);
  }
  lb.back() = std::max(lb.back(), 1);

  double best = std::numeric_limits<double>::infinity();
  std::vector<int> alloc(n, 0);
  std::function<void(std::size_t, int)> recurse = [&](std::size_t i,
                                                      int remaining) {
    if (i + 1 == n) {
      if (remaining < lb[i]) return;
      alloc[i] = remaining;
      const AllocationEval eval = EvaluateAllocation(p, alloc);
      if (eval.feasible) best = std::min(best, eval.objective);
      return;
    }
    for (int v = lb[i]; v <= remaining; ++v) {
      alloc[i] = v;
      recurse(i + 1, remaining - v);
    }
  };
  recurse(0, p.gpus);
  return best;
}

TEST(EvaluateAllocation, NoDemotionCascade) {
  // Demand fits each runtime's capacity exactly: C_i = Q_i, R_i = 0.
  const AllocationProblem p = MakeProblem(6, {20.0, 10.0, 5.0});
  const AllocationEval eval = EvaluateAllocation(p, {1, 1, 4});
  EXPECT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.processed[0], 20.0);
  EXPECT_DOUBLE_EQ(eval.processed[1], 10.0);
  EXPECT_DOUBLE_EQ(eval.processed[2], 5.0);
  EXPECT_DOUBLE_EQ(eval.carryover[0], 0.0);
  EXPECT_DOUBLE_EQ(eval.carryover[1], 0.0);
  EXPECT_DOUBLE_EQ(eval.unabsorbed, 0.0);
  // Hand-computed objective (ns): L(B)*C with B = C/N.
  const double t0 = 1e6 * (20.0 / 1 + 1) / 2 * 20.0;
  const double t1 = 2e6 * (10.0 / 1 + 1) / 2 * 10.0;
  const double t2 = 4e6 * (5.0 / 4 + 1) / 2 * 5.0;
  EXPECT_NEAR(eval.objective, t0 + t1 + t2, 1.0);
}

TEST(EvaluateAllocation, DemotionCarriesOverflowDownstream) {
  // Runtime 0 demand 30 > capacity 20 with one instance: 10 demote to 1.
  const AllocationProblem p = MakeProblem(3, {30.0, 0.0, 0.0});
  const AllocationEval eval = EvaluateAllocation(p, {1, 1, 1});
  EXPECT_DOUBLE_EQ(eval.processed[0], 20.0);
  EXPECT_DOUBLE_EQ(eval.carryover[0], 10.0);
  EXPECT_DOUBLE_EQ(eval.processed[1], 10.0);
  EXPECT_DOUBLE_EQ(eval.carryover[1], 0.0);
  EXPECT_DOUBLE_EQ(eval.processed[2], 0.0);
}

TEST(EvaluateAllocation, LastRuntimeAbsorbsEverything) {
  // All demand demotes to the last runtime; Eq. 5 (i = I) has no min().
  const AllocationProblem p = MakeProblem(1, {0.0, 0.0, 50.0});
  const AllocationEval eval = EvaluateAllocation(p, {0, 0, 1});
  EXPECT_DOUBLE_EQ(eval.processed[2], 50.0);
  EXPECT_GT(eval.unabsorbed, 0.0);  // 50 > capacity 5
  EXPECT_TRUE(eval.feasible);
}

TEST(EvaluateAllocation, ZeroAllocationOnLastRuntimeInfeasible) {
  const AllocationProblem p = MakeProblem(2, {0.0, 0.0, 1.0});
  const AllocationEval eval = EvaluateAllocation(p, {1, 1, 0});
  EXPECT_FALSE(eval.feasible);
}

TEST(EvaluateAllocation, ZeroMidRuntimeDemotesEverything) {
  const AllocationProblem p = MakeProblem(2, {0.0, 5.0, 0.0});
  const AllocationEval eval = EvaluateAllocation(p, {0, 0, 2});
  EXPECT_DOUBLE_EQ(eval.processed[1], 0.0);
  EXPECT_DOUBLE_EQ(eval.carryover[1], 5.0);
  EXPECT_DOUBLE_EQ(eval.processed[2], 5.0);
}

TEST(SolveAllocationExact, MatchesBruteForceSmall) {
  const AllocationProblem p = MakeProblem(6, {25.0, 12.0, 4.0});
  const AllocationResult result = SolveAllocationExact(p);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.objective, BruteForceOptimum(p), 1e-6);
  int total = 0;
  for (int v : result.gpus_per_runtime) total += v;
  EXPECT_EQ(total, 6);
  EXPECT_GE(result.gpus_per_runtime.back(), 1);
}

TEST(SolveAllocationExact, HotSmallBinGetsMoreGpus) {
  // Nearly all demand is short requests: the small runtime should dominate.
  const AllocationProblem p = MakeProblem(8, {80.0, 4.0, 1.0});
  const AllocationResult result = SolveAllocationExact(p);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.gpus_per_runtime[0], 4);
  EXPECT_GE(result.gpus_per_runtime.back(), 1);  // Eq. 7
}

TEST(SolveAllocationExact, ScarceRegimeFallsBackBestEffort) {
  // Lower bounds need more GPUs than available.
  const AllocationProblem p = MakeProblem(2, {100.0, 50.0, 20.0});
  const AllocationResult result = SolveAllocationExact(p);
  EXPECT_FALSE(result.feasible);
  int total = 0;
  for (int v : result.gpus_per_runtime) total += v;
  EXPECT_EQ(total, 2);
  EXPECT_GE(result.gpus_per_runtime.back(), 1);
}

TEST(SolveAllocationGreedy, NeverBeatsExact) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    arlo::Rng rng(seed);
    const AllocationProblem p = MakeProblem(
        static_cast<int>(rng.UniformInt(3, 9)),
        {rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 20.0),
         rng.Uniform(0.0, 10.0)});
    const AllocationResult exact = SolveAllocationExact(p);
    const AllocationResult greedy = SolveAllocationGreedy(p);
    if (exact.feasible && greedy.feasible) {
      EXPECT_LE(exact.objective, greedy.objective + 1e-6) << "seed " << seed;
    }
  }
}

TEST(EvenAllocation, SplitsEvenly) {
  const AllocationProblem p = MakeProblem(7, {10.0, 10.0, 4.0});
  const AllocationResult result = EvenAllocation(p);
  EXPECT_EQ(result.gpus_per_runtime[0], 2);
  EXPECT_EQ(result.gpus_per_runtime[1], 2);
  EXPECT_EQ(result.gpus_per_runtime[2], 3);  // remainder to largest
}

TEST(EvenAllocation, WorseThanExactOnSkewedDemand) {
  const AllocationProblem p = MakeProblem(9, {85.0, 5.0, 2.0});
  const double exact = SolveAllocationExact(p).objective;
  const double even = EvenAllocation(p).objective;
  EXPECT_GT(even, exact * 1.05);  // Table 3's point
}

TEST(ProportionalAllocation, FollowsGlobalWeights) {
  const AllocationProblem p = MakeProblem(8, {10.0, 10.0, 4.0});
  // Global (whole-trace) demand heavily short.
  const AllocationResult result =
      ProportionalAllocation(p, {80.0, 10.0, 5.0});
  int total = 0;
  for (int v : result.gpus_per_runtime) total += v;
  EXPECT_EQ(total, 8);
  EXPECT_GE(result.gpus_per_runtime[0], 2);
  EXPECT_GE(result.gpus_per_runtime.back(), 1);
}

TEST(SolveAllocationViaIlp, AgreesWithExactWhenNoDemotion) {
  const AllocationProblem p = MakeProblem(6, {25.0, 12.0, 4.0});
  const AllocationResult exact = SolveAllocationExact(p);
  const AllocationResult ilp = SolveAllocationViaIlp(p, 6);
  ASSERT_TRUE(ilp.feasible);
  // The linearization ignores carryover, so allow equality or near-equality
  // in the regime where the exact optimum has no demotion.
  EXPECT_NEAR(ilp.objective, exact.objective,
              0.05 * std::abs(exact.objective));
}

TEST(SolveAllocationIncremental, ZeroMovesReturnsPrevious) {
  const AllocationProblem p = MakeProblem(6, {25.0, 12.0, 4.0});
  const std::vector<int> previous = {3, 2, 1};
  const AllocationResult r = SolveAllocationIncremental(p, previous, 0);
  EXPECT_EQ(r.gpus_per_runtime, previous);
  EXPECT_NEAR(r.objective, EvaluateAllocation(p, previous).objective, 1e-9);
}

TEST(SolveAllocationIncremental, EachMoveImprovesOrStops) {
  const AllocationProblem p = MakeProblem(8, {80.0, 4.0, 1.0});
  // Start far from optimal: everything on the largest runtime.
  const std::vector<int> previous = {0, 0, 8};
  double last = EvaluateAllocation(p, previous).objective;
  std::vector<int> current = previous;
  for (int budget = 1; budget <= 8; ++budget) {
    const AllocationResult r =
        SolveAllocationIncremental(p, previous, budget);
    EXPECT_LE(r.objective, last + 1e-9) << "budget " << budget;
    last = r.objective;
    current = r.gpus_per_runtime;
    int total = 0;
    for (int v : r.gpus_per_runtime) total += v;
    EXPECT_EQ(total, 8);
    EXPECT_GE(r.gpus_per_runtime.back(), 1);  // Eq. 7 preserved
  }
}

TEST(SolveAllocationIncremental, LargeBudgetApproachesExact) {
  const AllocationProblem p = MakeProblem(7, {40.0, 15.0, 5.0});
  const AllocationResult exact = SolveAllocationExact(p);
  const AllocationResult inc =
      SolveAllocationIncremental(p, {0, 0, 7}, /*max_moves=*/20);
  // Steepest descent may stop in a local optimum, but on this convex-ish
  // instance it reaches the global one.
  EXPECT_NEAR(inc.objective, exact.objective, 0.02 * exact.objective);
}

TEST(SolveAllocationIncremental, RejectsMismatchedPrevious) {
  const AllocationProblem p = MakeProblem(4, {1.0, 1.0, 1.0});
  EXPECT_THROW(SolveAllocationIncremental(p, {1, 1}, 2), std::logic_error);
  EXPECT_THROW(SolveAllocationIncremental(p, {1, 1, 1}, 2),
               std::logic_error);  // sums to 3, not 4
}

TEST(SolveAllocationExact, WarmStartSeedsIncumbent) {
  const AllocationProblem p = MakeProblem(8, {30.0, 12.0, 4.0});
  const AllocationResult cold = SolveAllocationExact(p);
  ASSERT_TRUE(cold.feasible);

  // Re-solving with the optimum as the warm start must return the same
  // objective; when the warm start beats greedy the flag is reported and
  // the search explores no more nodes than the cold solve (the bound can
  // only be tighter).
  AllocationSolveOptions options;
  options.warm_start = cold.gpus_per_runtime;
  const AllocationResult warm = SolveAllocationExact(p, options);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_LE(warm.nodes_explored, cold.nodes_explored);
  if (warm.warm_started) {
    EXPECT_EQ(warm.gpus_per_runtime, cold.gpus_per_runtime);
  }
}

TEST(SolveAllocationExact, WarmStartIgnoredWhenShapeMismatched) {
  const AllocationProblem p = MakeProblem(8, {30.0, 12.0, 4.0});
  const AllocationResult cold = SolveAllocationExact(p);

  AllocationSolveOptions wrong_size;
  wrong_size.warm_start = {4, 4};  // two entries for three runtimes
  const AllocationResult a = SolveAllocationExact(p, wrong_size);
  EXPECT_FALSE(a.warm_started);
  EXPECT_NEAR(a.objective, cold.objective, 1e-9);

  AllocationSolveOptions wrong_sum;
  wrong_sum.warm_start = {4, 2, 1};  // sums to 7, not 8
  const AllocationResult b = SolveAllocationExact(p, wrong_sum);
  EXPECT_FALSE(b.warm_started);
  EXPECT_NEAR(b.objective, cold.objective, 1e-9);
}

TEST(SolveAllocationExact, TimeBudgetFallsBackToBestIncumbent) {
  // A large instance with an (effectively) zero budget: the search is cut
  // off almost immediately and must still return a feasible allocation —
  // the greedy/warm incumbent — with `capped` set.
  AllocationProblem p;
  p.gpus = 400;
  p.profiles.clear();
  for (int i = 1; i <= 12; ++i) {
    p.profiles.push_back(MakeProfile(static_cast<RuntimeId>(i - 1), 32 * i,
                                     0.5 + 0.4 * i, 20.0));
  }
  p.demand.assign(12, 0.0);
  for (std::size_t i = 0; i < 12; ++i) {
    p.demand[i] = 40.0 / static_cast<double>(i + 1);
  }

  AllocationSolveOptions options;
  options.budget_ms = 1e-6;  // expires at the first amortized check
  const AllocationResult capped = SolveAllocationExact(p, options);
  ASSERT_TRUE(capped.feasible);
  EXPECT_TRUE(capped.capped);
  int total = 0;
  for (int v : capped.gpus_per_runtime) total += v;
  EXPECT_EQ(total, p.gpus);

  // The capped objective can be no better than the unbounded one.
  const AllocationResult full = SolveAllocationExact(p);
  EXPECT_GE(capped.objective, full.objective - 1e-9);
}

TEST(SolveAllocation, RejectsMalformedProblems) {
  AllocationProblem p = MakeProblem(4, {1.0, 1.0});  // demand size mismatch
  EXPECT_THROW(SolveAllocationExact(p), std::logic_error);
  AllocationProblem q = MakeProblem(0, {1.0, 1.0, 1.0});
  EXPECT_THROW(SolveAllocationExact(q), std::logic_error);
}

// Property sweep: exact B&B equals brute force across random instances.
class AllocationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocationPropertyTest, ExactMatchesBruteForce) {
  arlo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  AllocationProblem p = MakeProblem(
      static_cast<int>(rng.UniformInt(3, 10)),
      {rng.Uniform(0.0, 60.0), rng.Uniform(0.0, 30.0),
       rng.Uniform(0.0, 12.0)});
  const AllocationResult exact = SolveAllocationExact(p);
  const double brute = BruteForceOptimum(p);
  if (!std::isinf(brute)) {
    ASSERT_TRUE(exact.feasible) << "seed " << GetParam();
    EXPECT_NEAR(exact.objective, brute, 1e-6) << "seed " << GetParam();
  } else {
    EXPECT_FALSE(exact.feasible) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationPropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace arlo::solver
