#include "trace/analysis.h"

#include <gtest/gtest.h>

#include "runtime/model.h"
#include "trace/twitter.h"

namespace arlo::trace {
namespace {

Trace MakeTwitter(double rate, double duration, std::uint64_t seed,
                  bool bursty, double drift = 0.5,
                  double drift_period = 300.0) {
  TwitterTraceConfig config;
  config.duration_s = duration;
  config.mean_rate = rate;
  config.seed = seed;
  config.max_length = 125;
  config.drift_amplitude = drift;
  config.drift_period_s = drift_period;
  config.drift_noise = 0.0;
  config.pattern = bursty ? TwitterTraceConfig::Pattern::kBursty
                          : TwitterTraceConfig::Pattern::kStable;
  return SynthesizeTwitterTrace(config);
}

TEST(WindowedLengthStats, CoversTheWholeTrace) {
  const Trace t = MakeTwitter(100.0, 20.0, 1, false);
  const auto windows = WindowedLengthStats(t, 5.0, 125);
  ASSERT_EQ(windows.size(), 4u);
  std::size_t total = 0;
  for (const auto& w : windows) {
    total += w.requests;
    if (w.requests > 50) {
      EXPECT_GT(w.median, 10);
      EXPECT_LT(w.median, 40);
      EXPECT_GT(w.p98, w.median);
    }
  }
  EXPECT_EQ(total, t.Size());
}

TEST(IndexOfDispersion, NearOneForPoisson) {
  const Trace t = MakeTwitter(100.0, 400.0, 2, false);
  EXPECT_NEAR(IndexOfDispersion(t), 1.0, 0.25);
}

TEST(IndexOfDispersion, ElevatedForMmpp) {
  const Trace t = MakeTwitter(100.0, 400.0, 3, true);
  EXPECT_GT(IndexOfDispersion(t), 2.0);
}

TEST(IndexOfDispersion, EmptyTraceIsZero) {
  EXPECT_DOUBLE_EQ(IndexOfDispersion(Trace{}), 0.0);
}

TEST(KsDistance, ZeroForIdenticalTraces) {
  const Trace t = MakeTwitter(100.0, 10.0, 4, false);
  EXPECT_DOUBLE_EQ(KsDistance(t, t, 125), 0.0);
}

TEST(KsDistance, LargeForDisjointDistributions) {
  std::vector<Request> small, large;
  for (int i = 0; i < 100; ++i) {
    small.push_back({0, Seconds(0.01 * i), 10});
    large.push_back({0, Seconds(0.01 * i), 100});
  }
  EXPECT_DOUBLE_EQ(KsDistance(Trace(small), Trace(large), 125), 1.0);
}

TEST(KsDistance, SameModelDifferentSeedsAreClose) {
  const Trace a = MakeTwitter(300.0, 30.0, 5, false, /*drift=*/0.0);
  const Trace b = MakeTwitter(300.0, 30.0, 6, false, /*drift=*/0.0);
  EXPECT_LT(KsDistance(a, b, 125), 0.05);
}

TEST(MaxAdjacentWindowDrift, HigherWithMixDrift) {
  // Drift period 40 s with 20 s windows: adjacent windows sit half a swing
  // apart, maximizing the contrast against the stationary baseline.
  const Trace stationary = MakeTwitter(400.0, 120.0, 7, false, 0.0);
  const Trace drifting = MakeTwitter(400.0, 120.0, 7, false, 0.9, 40.0);
  const double d_stationary = MaxAdjacentWindowDrift(stationary, 20.0, 125);
  const double d_drifting = MaxAdjacentWindowDrift(drifting, 20.0, 125);
  EXPECT_GT(d_drifting, d_stationary * 2.0)
      << "stationary=" << d_stationary << " drifting=" << d_drifting;
}

// §2.2: "one trace clip results in 80.6% of the FLOPs wasted when served by
// a runtime with max_length 125" — our calibrated trace should land near
// that figure using the Bert FLOPs shape.
TEST(MeanPaddingWaste, MatchesPaperBallparkAt125) {
  const Trace t = MakeTwitter(500.0, 60.0, 8, false);
  const runtime::ModelSpec m = runtime::ModelSpec::BertBase();
  // flops(s) = L * (12 H^2 s + 2 H s^2): linear and quadratic coefficients.
  const double lin = static_cast<double>(m.layers) * 12.0 * m.hidden * m.hidden;
  const double quad = static_cast<double>(m.layers) * 2.0 * m.hidden;
  const double waste = MeanPaddingWaste(t, 125, lin, quad);
  EXPECT_NEAR(waste, 0.806, 0.05);
}

TEST(MeanPaddingWaste, ZeroWhenEverythingIsMaxLength) {
  std::vector<Request> reqs;
  for (int i = 0; i < 10; ++i) reqs.push_back({0, Seconds(0.1 * i), 125});
  EXPECT_NEAR(MeanPaddingWaste(Trace(reqs), 125, 100.0, 1.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace arlo::trace
