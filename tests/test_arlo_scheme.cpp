#include "core/arlo_scheme.h"

#include <gtest/gtest.h>

#include "baselines/scenario.h"
#include "sim/engine.h"
#include "trace/twitter.h"

namespace arlo::core {
namespace {

using baselines::DemandFromTrace;
using baselines::MakeRuntimeSetFor;
using baselines::ScenarioConfig;

trace::Trace SmallTrace(double rate, double duration_s, std::uint64_t seed,
                        bool bursty = false) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.seed = seed;
  config.pattern = bursty ? trace::TwitterTraceConfig::Pattern::kBursty
                          : trace::TwitterTraceConfig::Pattern::kStable;
  return trace::SynthesizeTwitterTrace(config);
}

ScenarioConfig SmallScenario() {
  ScenarioConfig config;
  config.gpus = 4;
  config.slo = Millis(150.0);
  config.period = Seconds(2.0);
  return config;
}

TEST(ArloScheme, ServesEveryRequest) {
  const trace::Trace t = SmallTrace(200.0, 6.0, 1);
  ScenarioConfig config = SmallScenario();
  auto runtimes = MakeRuntimeSetFor(config);
  config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  EXPECT_EQ(result.records.size(), t.Size());
  for (const auto& r : result.records) {
    EXPECT_GT(r.Latency(), 0);
    EXPECT_NE(r.runtime, kInvalidRuntime);
  }
}

TEST(ArloScheme, BootstrapDeploysEverythingOnLargestRuntime) {
  ScenarioConfig config = SmallScenario();
  auto scheme = std::make_unique<ArloScheme>(
      MakeRuntimeSetFor(config), [&] {
        ArloSchemeConfig c;
        c.initial_gpus = config.gpus;
        c.runtime_scheduler.slo = config.slo;
        return c;
      }());
  const trace::Trace t = SmallTrace(50.0, 1.0, 2);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  ASSERT_FALSE(scheme->AllocationHistory().empty());
  const auto& initial = scheme->AllocationHistory().front().second;
  EXPECT_EQ(initial.back(), config.gpus);
  for (std::size_t i = 0; i + 1 < initial.size(); ++i) {
    EXPECT_EQ(initial[i], 0);
  }
  // Bootstrap means every request ran on the largest runtime.
  for (const auto& r : result.records) {
    EXPECT_EQ(r.runtime, initial.size() - 1);
  }
}

TEST(ArloScheme, PeriodicReallocationSpreadsRuntimes) {
  const trace::Trace t = SmallTrace(250.0, 8.0, 3);
  ScenarioConfig config = SmallScenario();  // period = 2 s
  auto runtimes = MakeRuntimeSetFor(config);
  ArloSchemeConfig arlo;
  arlo.initial_gpus = config.gpus;
  arlo.runtime_scheduler.slo = config.slo;
  arlo.runtime_scheduler.period = config.period;
  ArloScheme scheme(runtimes, arlo);
  const sim::EngineResult result = sim::RunScenario(t, scheme);
  EXPECT_EQ(result.records.size(), t.Size());
  // After a couple of periods the ILP must have moved GPUs off the
  // all-largest bootstrap toward the short-request runtimes.
  ASSERT_GE(scheme.AllocationHistory().size(), 2u);
  const auto& final_alloc = scheme.AllocationHistory().back().second;
  int non_largest = 0;
  for (std::size_t i = 0; i + 1 < final_alloc.size(); ++i) {
    non_largest += final_alloc[i];
  }
  EXPECT_GT(non_largest, 0);
  // Eq. 7 invariant: every allocation keeps the largest runtime alive.
  for (const auto& [when, alloc] : scheme.AllocationHistory()) {
    EXPECT_GE(alloc.back(), 1) << "at t=" << when;
  }
}

TEST(ArloScheme, WarmStartUsesInitialDemand) {
  const trace::Trace t = SmallTrace(200.0, 3.0, 4);
  ScenarioConfig config = SmallScenario();
  auto runtimes = MakeRuntimeSetFor(config);
  config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);
  auto scheme_ptr = baselines::MakeSchemeByName("arlo", config);
  auto* scheme = dynamic_cast<ArloScheme*>(scheme_ptr.get());
  ASSERT_NE(scheme, nullptr);
  (void)sim::RunScenario(t, *scheme);
  const auto& initial = scheme->AllocationHistory().front().second;
  // Warm start allocates across multiple runtimes immediately.
  int deployed_kinds = 0;
  for (int v : initial) deployed_kinds += v > 0 ? 1 : 0;
  EXPECT_GE(deployed_kinds, 2);
}

TEST(ArloScheme, DemotionHappensUnderLoad) {
  // High rate into few GPUs: ideal runtimes saturate, RS must demote.
  const trace::Trace t = SmallTrace(900.0, 4.0, 5, /*bursty=*/true);
  ScenarioConfig config = SmallScenario();
  config.gpus = 3;
  auto runtimes = MakeRuntimeSetFor(config);
  config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);
  auto scheme_ptr = baselines::MakeSchemeByName("arlo", config);
  auto* scheme = dynamic_cast<ArloScheme*>(scheme_ptr.get());
  const sim::EngineResult result = sim::RunScenario(t, *scheme_ptr);
  EXPECT_EQ(result.records.size(), t.Size());
  EXPECT_GT(scheme->Stats().demoted, 0u);
}

TEST(ArloScheme, IlbAndIgVariantsServeEverything) {
  const trace::Trace t = SmallTrace(200.0, 4.0, 6);
  for (const char* name : {"arlo-ilb", "arlo-ig"}) {
    ScenarioConfig config = SmallScenario();
    auto runtimes = MakeRuntimeSetFor(config);
    config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);
    auto scheme = baselines::MakeSchemeByName(name, config);
    EXPECT_EQ(scheme->Name(), name);
    const sim::EngineResult result = sim::RunScenario(t, *scheme);
    EXPECT_EQ(result.records.size(), t.Size()) << name;
  }
}

TEST(ArloScheme, AutoscalerAddsGpusUnderOverload) {
  // 1 initial GPU, heavy load → must scale out.
  const trace::Trace t = SmallTrace(400.0, 10.0, 7);
  ScenarioConfig config = SmallScenario();
  config.gpus = 1;
  config.autoscale = true;
  config.autoscaler.min_samples = 10;
  config.autoscaler.latency_window = Seconds(5.0);
  config.autoscaler.scale_out_cooldown = Seconds(2.0);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  EXPECT_EQ(result.records.size(), t.Size());
  EXPECT_GT(result.peak_gpus, 1);
}

TEST(ArloScheme, ReallocationDisabledKeepsBootstrap) {
  const trace::Trace t = SmallTrace(150.0, 6.0, 8);
  ScenarioConfig config = SmallScenario();
  config.enable_reallocation = false;
  auto scheme_ptr = baselines::MakeSchemeByName("arlo", config);
  auto* scheme = dynamic_cast<ArloScheme*>(scheme_ptr.get());
  (void)sim::RunScenario(t, *scheme_ptr);
  EXPECT_EQ(scheme->AllocationHistory().size(), 1u);
}

TEST(MakeSchemeByName, RejectsUnknown) {
  EXPECT_THROW(baselines::MakeSchemeByName("bogus", ScenarioConfig{}),
               std::invalid_argument);
}

TEST(DemandFromTrace, CountsPerBinScaledToSlo) {
  // 10-second trace, 2 requests (len 30 and 300), SLO 0.5 s.
  std::vector<Request> reqs;
  for (int i = 0; i < 50; ++i) reqs.push_back({0, Seconds(0.2 * i), 30});
  for (int i = 0; i < 10; ++i) reqs.push_back({0, Seconds(1.0 * i) + 1, 300});
  reqs.push_back({0, Seconds(10.0), 1});
  const trace::Trace t(std::move(reqs));
  ScenarioConfig config;
  auto runtimes = MakeRuntimeSetFor(config);
  const auto demand = DemandFromTrace(t, *runtimes, Millis(500.0));
  ASSERT_EQ(demand.size(), 8u);
  // 51 requests <= 64 over 10 s → 5.1/s → 2.55 per 0.5 s window.
  EXPECT_NEAR(demand[0], 2.55, 1e-9);
  // 10 requests in (256, 320] → bin index 4.
  EXPECT_NEAR(demand[4], 0.5, 1e-9);
}

}  // namespace
}  // namespace arlo::core
