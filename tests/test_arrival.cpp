#include "trace/arrival.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace arlo::trace {
namespace {

TEST(PoissonArrivals, MeanCountMatchesRate) {
  PoissonArrivals p;
  Rng rng(1);
  std::vector<SimTime> out;
  constexpr int kSeconds = 2000;
  for (int s = 0; s < kSeconds; ++s) {
    p.GenerateSecond(Seconds(s), 50.0, rng, out);
  }
  EXPECT_NEAR(static_cast<double>(out.size()) / kSeconds, 50.0, 1.0);
}

TEST(PoissonArrivals, ArrivalsStayInsideTick) {
  PoissonArrivals p;
  Rng rng(2);
  std::vector<SimTime> out;
  p.GenerateSecond(Seconds(7.0), 100.0, rng, out);
  for (SimTime t : out) {
    EXPECT_GE(t, Seconds(7.0));
    EXPECT_LT(t, Seconds(8.0));
  }
}

TEST(PoissonArrivals, SortedWithinTick) {
  PoissonArrivals p;
  Rng rng(3);
  std::vector<SimTime> out;
  p.GenerateSecond(0, 200.0, rng, out);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(PoissonArrivals, ZeroRateProducesNothing) {
  PoissonArrivals p;
  Rng rng(4);
  std::vector<SimTime> out;
  p.GenerateSecond(0, 0.0, rng, out);
  EXPECT_TRUE(out.empty());
}

TEST(MmppArrivals, LongRunMeanMatchesNominalRate) {
  MmppArrivals m;
  Rng rng(5);
  std::vector<SimTime> out;
  constexpr int kSeconds = 4000;
  for (int s = 0; s < kSeconds; ++s) {
    m.GenerateSecond(Seconds(s), 40.0, rng, out);
  }
  // Normalized by MeanMultiplier, so the long-run rate matches.
  EXPECT_NEAR(static_cast<double>(out.size()) / kSeconds, 40.0, 1.5);
}

TEST(MmppArrivals, MeanMultiplierIsSojournWeighted) {
  MmppArrivals::Params params;
  params.calm_multiplier = 0.5;
  params.burst_multiplier = 2.0;
  params.calm_mean_sojourn_s = 3.0;
  params.burst_mean_sojourn_s = 1.0;
  MmppArrivals m(params);
  EXPECT_NEAR(m.MeanMultiplier(), (0.5 * 3.0 + 2.0 * 1.0) / 4.0, 1e-12);
}

TEST(MmppArrivals, BurstierThanPoisson) {
  // Per-second counts under MMPP have a larger variance-to-mean ratio
  // (index of dispersion) than a Poisson process at the same mean rate.
  Rng rng_p(6), rng_m(6);
  PoissonArrivals poisson;
  MmppArrivals mmpp;
  auto dispersion = [](auto& process, Rng& rng) {
    double sum = 0.0, sq = 0.0;
    constexpr int kSeconds = 1500;
    for (int s = 0; s < kSeconds; ++s) {
      std::vector<SimTime> out;
      process.GenerateSecond(Seconds(s), 30.0, rng, out);
      const double n = static_cast<double>(out.size());
      sum += n;
      sq += n * n;
    }
    const double mean = sum / kSeconds;
    const double var = sq / kSeconds - mean * mean;
    return var / mean;
  };
  const double d_poisson = dispersion(poisson, rng_p);
  const double d_mmpp = dispersion(mmpp, rng_m);
  EXPECT_NEAR(d_poisson, 1.0, 0.2);
  EXPECT_GT(d_mmpp, 1.8);
}

TEST(MmppArrivals, StatePersistsThroughSilentSeconds) {
  MmppArrivals m;
  Rng rng(7);
  std::vector<SimTime> out;
  m.GenerateSecond(0, 10.0, rng, out);
  m.GenerateSecond(Seconds(1.0), 0.0, rng, out);  // silent second
  const std::size_t before = out.size();
  m.GenerateSecond(Seconds(2.0), 10.0, rng, out);
  // No arrivals were emitted during the silent second.
  for (SimTime t : out) {
    EXPECT_TRUE(t < Seconds(1.0) || t >= Seconds(2.0));
  }
  EXPECT_GE(out.size(), before);
}

TEST(MmppArrivals, RejectsInvalidParams) {
  MmppArrivals::Params params;
  params.calm_multiplier = 0.0;
  EXPECT_THROW(MmppArrivals{params}, std::logic_error);
  params = {};
  params.burst_multiplier = 0.1;  // below calm
  EXPECT_THROW(MmppArrivals{params}, std::logic_error);
}

}  // namespace
}  // namespace arlo::trace
