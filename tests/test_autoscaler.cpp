#include "core/autoscaler.h"

#include <gtest/gtest.h>

namespace arlo::core {
namespace {

AutoscalerConfig TestConfig() {
  AutoscalerConfig c;
  c.min_samples = 5;
  c.latency_window = Seconds(10.0);
  c.scale_out_cooldown = Seconds(10.0);
  c.scale_in_interval = Seconds(60.0);
  return c;
}

TEST(Autoscaler, ScalesOutWhenP98Reaches95PercentOfSlo) {
  TargetTrackingAutoscaler scaler(TestConfig(), Millis(100.0));
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(1.0), Millis(96.0));  // 96% of SLO
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(2.0), 5), ScaleAction::kOut);
}

TEST(Autoscaler, NoActionInComfortZone) {
  TargetTrackingAutoscaler scaler(TestConfig(), Millis(100.0));
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(1.0), Millis(70.0));  // between 50% and 95%
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(2.0), 5), ScaleAction::kNone);
  EXPECT_EQ(scaler.Evaluate(Seconds(120.0), 5), ScaleAction::kNone);
}

TEST(Autoscaler, RequiresMinimumSamples) {
  TargetTrackingAutoscaler scaler(TestConfig(), Millis(100.0));
  for (int i = 0; i < 3; ++i) {
    scaler.OnCompletion(Seconds(1.0), Millis(99.0));
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(2.0), 5), ScaleAction::kNone);
}

TEST(Autoscaler, ScaleOutCooldown) {
  TargetTrackingAutoscaler scaler(TestConfig(), Millis(100.0));
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(1.0), Millis(99.0));
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(2.0), 5), ScaleAction::kOut);
  // Still hot, but within the 10 s cooldown.
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(5.0), Millis(99.0));
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(6.0), 6), ScaleAction::kNone);
  // After cooldown, fires again.
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(13.0), Millis(99.0));
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(13.0), 6), ScaleAction::kOut);
}

TEST(Autoscaler, ScaleInOnlyAtItsInterval) {
  TargetTrackingAutoscaler scaler(TestConfig(), Millis(100.0));
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(30.0), Millis(10.0));  // far below 50%
  }
  // The first scale-in check window starts at t=0; evaluations before 60 s
  // do not scale in.
  EXPECT_EQ(scaler.Evaluate(Seconds(31.0), 5), ScaleAction::kNone);
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(62.0), Millis(10.0));
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(62.0), 5), ScaleAction::kIn);
}

TEST(Autoscaler, NeverScalesBelowMinGpus) {
  AutoscalerConfig config = TestConfig();
  config.min_gpus = 3;
  TargetTrackingAutoscaler scaler(config, Millis(100.0));
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(70.0), Millis(5.0));
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(70.0), 3), ScaleAction::kNone);
}

TEST(Autoscaler, NeverScalesAboveMaxGpus) {
  AutoscalerConfig config = TestConfig();
  config.max_gpus = 5;
  TargetTrackingAutoscaler scaler(config, Millis(100.0));
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(1.0), Millis(99.0));
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(2.0), 5), ScaleAction::kNone);
}

TEST(Autoscaler, OldLatenciesFallOutOfWindow) {
  TargetTrackingAutoscaler scaler(TestConfig(), Millis(100.0));
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(1.0), Millis(99.0));  // hot, but stale
  }
  for (int i = 0; i < 20; ++i) {
    scaler.OnCompletion(Seconds(30.0), Millis(60.0));  // current: fine
  }
  EXPECT_EQ(scaler.Evaluate(Seconds(31.0), 5), ScaleAction::kNone);
}

TEST(Autoscaler, RejectsInvertedThresholds) {
  AutoscalerConfig config = TestConfig();
  config.scale_out_fraction = 0.4;  // below scale_in 0.5
  EXPECT_THROW(TargetTrackingAutoscaler(config, Millis(100.0)),
               std::logic_error);
}

}  // namespace
}  // namespace arlo::core
