#include <gtest/gtest.h>

#include "baselines/infaas_scheme.h"
#include "baselines/scenario.h"
#include "baselines/uniform_scheme.h"
#include "sim/engine.h"
#include "trace/twitter.h"

namespace arlo::baselines {
namespace {

trace::Trace SmallTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

TEST(StScheme, ConstantServiceTimeRegardlessOfLength) {
  ScenarioConfig config;
  config.gpus = 4;
  auto scheme = MakeSchemeByName("st", config);
  EXPECT_EQ(scheme->Name(), "st");
  const trace::Trace t = SmallTrace(150.0, 3.0, 1);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  ASSERT_EQ(result.records.size(), t.Size());
  const SimDuration service = result.records.front().ServiceTime();
  for (const auto& r : result.records) {
    EXPECT_EQ(r.ServiceTime(), service);  // padded to 512 every time
  }
}

TEST(DtScheme, ServiceTimeGrowsWithLength) {
  ScenarioConfig config;
  config.gpus = 4;
  auto scheme = MakeSchemeByName("dt", config);
  const trace::Trace t = SmallTrace(150.0, 3.0, 2);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  ASSERT_EQ(result.records.size(), t.Size());
  // Group by length: longer requests must not be cheaper.
  SimDuration short_service = 0, long_service = 0;
  for (const auto& r : result.records) {
    if (r.length <= 64) short_service = std::max(short_service, r.ServiceTime());
    if (r.length >= 400) long_service = std::max(long_service, r.ServiceTime());
  }
  if (short_service > 0 && long_service > 0) {
    EXPECT_GT(long_service, short_service);
  }
}

TEST(DtScheme, BeatsStOnMeanLatencyForTypicalTraffic) {
  const trace::Trace t = SmallTrace(400.0, 5.0, 3);
  auto run = [&](const std::string& name) {
    ScenarioConfig config;
    config.gpus = 4;
    auto scheme = MakeSchemeByName(name, config);
    const sim::EngineResult result = sim::RunScenario(t, *scheme);
    return Summarize(result.records, Millis(150.0)).mean_ms;
  };
  // Most requests are short; DT computes their true length (inflated) while
  // ST pads everything to 512 — DT wins on mean latency (§5.1.1).
  EXPECT_LT(run("dt"), run("st"));
}

TEST(UniformScheme, RequiresSingleRuntimeSet) {
  ScenarioConfig config;
  auto multi = MakeRuntimeSetFor(config);
  BaselineConfig base;
  EXPECT_THROW(UniformScheme("bad", multi, base), std::logic_error);
}

TEST(InfaasScheme, ServesAllAndReallocatesVariants) {
  ScenarioConfig config;
  config.gpus = 4;
  config.period = Seconds(2.0);
  auto scheme = MakeSchemeByName("infaas", config);
  EXPECT_EQ(scheme->Name(), "infaas");
  const trace::Trace t = SmallTrace(250.0, 8.0, 4);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  ASSERT_EQ(result.records.size(), t.Size());
  // After the first period, smaller variants get deployed and used.
  bool used_small_variant = false;
  for (const auto& r : result.records) {
    if (r.runtime != 7u) used_small_variant = true;
  }
  EXPECT_TRUE(used_small_variant);
}

TEST(InfaasScheme, BinPackingPrefersLoadedInstancesWithHeadroom) {
  // Direct unit check of the dispatch behaviour through the scheme's MLQ is
  // covered in MultiLevelQueue.BestFit; here we check the scheme-level
  // fallback: when everything is at capacity it still dispatches.
  ScenarioConfig config;
  config.gpus = 1;
  auto scheme = MakeSchemeByName("infaas", config);
  const trace::Trace t = SmallTrace(800.0, 2.0, 5);  // heavy overload
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  EXPECT_EQ(result.records.size(), t.Size());  // nothing dropped
}

TEST(Schemes, AllNamesConstructAndRun) {
  const trace::Trace t = SmallTrace(100.0, 2.0, 6);
  for (const auto& name : AllSchemeNames()) {
    ScenarioConfig config;
    config.gpus = 3;
    auto scheme = MakeSchemeByName(name, config);
    const sim::EngineResult result = sim::RunScenario(t, *scheme);
    EXPECT_EQ(result.records.size(), t.Size()) << name;
  }
}

}  // namespace
}  // namespace arlo::baselines
