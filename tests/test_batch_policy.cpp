// Unit tests for the src/batch formation policies: factory + CLI validation
// golden errors, the per-policy Decide() contract, and the padding-token
// accounting behind the arlo_batch_tokens_* counters.
#include "batch/policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "batch/greedy_batcher.h"
#include "batch/length_bucket_batcher.h"
#include "batch/slo_deadline_batcher.h"
#include "runtime/compiled_runtime.h"

namespace arlo::batch {
namespace {

runtime::CompiledRuntime StaticRt(int max_length = 512) {
  return runtime::CompiledRuntime(runtime::ModelSpec::BertBase(),
                                  runtime::CompilationKind::kStatic,
                                  max_length);
}

runtime::CompiledRuntime DynamicRt() {
  return runtime::CompiledRuntime(runtime::ModelSpec::BertBase(),
                                  runtime::CompilationKind::kDynamic, 512);
}

Item MakeItem(RequestId id, int length, SimTime arrival = 0,
              SimTime queued_at = 0) {
  Item item;
  item.request.id = id;
  item.request.length = length;
  item.request.arrival = arrival;
  item.queued_at = queued_at;
  return item;
}

BatchContext Ctx(SimTime now, int max_batch, bool draining = false) {
  BatchContext ctx;
  ctx.now = now;
  ctx.max_batch = max_batch;
  ctx.per_request_overhead = Millis(0.8);
  ctx.draining = draining;
  return ctx;
}

// --- factory + CLI validation (golden errors, like CliFlags) --------------

TEST(BatchPolicyFactory, MakesEveryListedPolicy) {
  for (const std::string& name : BatchPolicyNames()) {
    const auto policy = MakeBatchPolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->Name(), name);
  }
}

TEST(BatchPolicyFactory, RejectUnknownMessageIsStable) {
  try {
    MakeBatchPolicy("xyz");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown batch policy: xyz (valid policies: greedy, length, "
                 "slo)");
  }
}

TEST(ValidateMaxBatchTest, AcceptsTheValidRange) {
  EXPECT_EQ(ValidateMaxBatch(1), 1);
  EXPECT_EQ(ValidateMaxBatch(8), 8);
  EXPECT_EQ(ValidateMaxBatch(1024), 1024);
}

TEST(ValidateMaxBatchTest, RejectMessageIsStable) {
  try {
    ValidateMaxBatch(0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "--max-batch must be a positive integer in [1, 1024] (got "
                 "0)");
  }
  EXPECT_THROW(ValidateMaxBatch(-3), std::invalid_argument);
  EXPECT_THROW(ValidateMaxBatch(1025), std::invalid_argument);
}

// --- greedy ----------------------------------------------------------------

TEST(GreedyBatcherTest, TakesThePrefixImmediately) {
  const auto rt = StaticRt();
  const GreedyBatcher policy;
  std::deque<Item> queue{MakeItem(0, 100), MakeItem(1, 200), MakeItem(2, 50)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 2));
  ASSERT_EQ(d.take, (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(d.timed_out);
}

TEST(GreedyBatcherTest, TakesEverythingWhenQueueIsShort) {
  const auto rt = StaticRt();
  const GreedyBatcher policy;
  std::deque<Item> queue{MakeItem(0, 100)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 8));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0}));
}

// --- slo -------------------------------------------------------------------

TEST(SloDeadlineBatcherTest, FullBatchLaunchesImmediately) {
  const auto rt = StaticRt();
  const SloDeadlineBatcher policy{BatchPolicyConfig{}};
  std::deque<Item> queue{MakeItem(0, 100), MakeItem(1, 200)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 2));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(d.timed_out);
}

TEST(SloDeadlineBatcherTest, PartialBatchWithSlackWaits) {
  const auto rt = StaticRt();
  BatchPolicyConfig config;
  config.slo = Millis(150.0);
  config.wait_fraction = 1.0;
  config.max_wait = Millis(5.0);
  const SloDeadlineBatcher policy{config};
  std::deque<Item> queue{MakeItem(0, 100, /*arrival=*/0, /*queued_at=*/0)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 4));
  EXPECT_TRUE(d.take.empty());
  // Plenty of slack, so the wait is exactly the max_wait cap.
  EXPECT_EQ(d.wait, Millis(5.0));
}

TEST(SloDeadlineBatcherTest, BudgetExpiryLaunchesWithTimeoutFlag) {
  const auto rt = StaticRt();
  BatchPolicyConfig config;
  config.wait_fraction = 1.0;
  config.max_wait = Millis(5.0);
  const SloDeadlineBatcher policy{config};
  std::deque<Item> queue{MakeItem(0, 100, 0, 0)};
  // The deadline is anchored at queued_at, so asking again at the deadline
  // launches what is there — flagged as a timeout.
  const BatchDecision d = policy.Decide(queue, rt, Ctx(Millis(5.0), 4));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(d.timed_out);
}

TEST(SloDeadlineBatcherTest, NoSlackLaunchesImmediately) {
  const auto rt = StaticRt();
  const SloDeadlineBatcher policy{BatchPolicyConfig{}};
  // Queued long after its SLO budget was spent: waiting can only lose.
  std::deque<Item> queue{
      MakeItem(0, 100, /*arrival=*/0, /*queued_at=*/Millis(200.0))};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(Millis(200.0), 4));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0}));
  EXPECT_FALSE(d.timed_out);  // no budget was granted, so none expired
}

TEST(SloDeadlineBatcherTest, DrainingNeverWaits) {
  const auto rt = StaticRt();
  BatchPolicyConfig config;
  config.wait_fraction = 1.0;
  const SloDeadlineBatcher policy{config};
  std::deque<Item> queue{MakeItem(0, 100, 0, 0)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 4, true));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0}));
}

TEST(SloDeadlineBatcherTest, ZeroWaitFractionIsGreedy) {
  const auto rt = StaticRt();
  BatchPolicyConfig config;
  config.wait_fraction = 0.0;
  const SloDeadlineBatcher policy{config};
  std::deque<Item> queue{MakeItem(0, 100, 0, 0)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 4));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0}));
  EXPECT_FALSE(d.timed_out);
}

// --- length ----------------------------------------------------------------

TEST(LengthBucketBatcherTest, GroupsOnlyTheFrontsPaddingBucket) {
  const auto rt = DynamicRt();  // 64-token staircase
  const LengthBucketBatcher policy{BatchPolicyConfig{}};
  // 40 and 50 share the 64 stair; 300 pads to 320 and must be skipped.
  std::deque<Item> queue{MakeItem(0, 40), MakeItem(1, 300), MakeItem(2, 50)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 4));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0, 2}));
  EXPECT_FALSE(d.timed_out);
}

TEST(LengthBucketBatcherTest, NeverWaits) {
  const auto rt = DynamicRt();
  const LengthBucketBatcher policy{BatchPolicyConfig{}};
  // Even a lone request with no bucket-mates launches right away.
  std::deque<Item> queue{MakeItem(0, 100)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 8));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0}));
}

TEST(LengthBucketBatcherTest, FillsThePowerOfTwoBucket) {
  const auto rt = DynamicRt();
  const LengthBucketBatcher policy{BatchPolicyConfig{}};
  // Four same-bucket requests: R(4) = c0/4 + per-slot work always beats
  // R(2) = c0/2 + the same per-slot work, so the full bucket forms.
  std::deque<Item> queue{MakeItem(0, 40), MakeItem(1, 50), MakeItem(2, 60),
                         MakeItem(3, 30)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 4));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(LengthBucketBatcherTest, StaticRuntimeGroupsEverything) {
  // A static runtime pads every request to max_length, so all lengths share
  // one group and the policy degenerates to cost-aware greedy.
  const auto rt = StaticRt();
  const LengthBucketBatcher policy{BatchPolicyConfig{}};
  std::deque<Item> queue{MakeItem(0, 20), MakeItem(1, 500), MakeItem(2, 100),
                         MakeItem(3, 300)};
  const BatchDecision d = policy.Decide(queue, rt, Ctx(0, 4));
  EXPECT_EQ(d.take, (std::vector<std::size_t>{0, 1, 2, 3}));
}

// --- shared helpers --------------------------------------------------------

TEST(BatchServiceTimeTest, AddsOverheadPerRequest) {
  const auto rt = StaticRt();
  const SimDuration ov = Millis(0.8);
  EXPECT_EQ(BatchServiceTime(rt, 3, 256, ov),
            3 * ov + rt.BatchComputeTime(3, 256));
}

TEST(BatchPaddingTokensTest, CountsBucketSlotsTimesPaddedLength) {
  const auto rt = StaticRt(512);
  // Batch of 3 rides the 4-slot bucket; a static runtime pads every slot to
  // 512 regardless of the true lengths.
  const PaddingTokens tokens = BatchPaddingTokens(rt, 3, 100 + 80 + 50, 100);
  EXPECT_EQ(tokens.useful, 230);
  EXPECT_EQ(tokens.computed, 4 * 512);

  const auto dyn = DynamicRt();
  // Dynamic runtime: slots pad to the 64-token staircase of the longest.
  const PaddingTokens dtokens = BatchPaddingTokens(dyn, 2, 40 + 100, 100);
  EXPECT_EQ(dtokens.useful, 140);
  EXPECT_EQ(dtokens.computed, 2 * 128);
}

}  // namespace
}  // namespace arlo::batch
