// Tests for the §6 "dynamic batch execution" extension: bucketed batch
// latency in the runtime model and opportunistic batching in the engine.
#include <gtest/gtest.h>

#include "baselines/scenario.h"
#include "batch/policy.h"
#include "runtime/compiled_runtime.h"
#include "sim/engine.h"
#include "trace/twitter.h"

namespace arlo {
namespace {

TEST(BatchComputeTime, Batch1MatchesComputeTime) {
  const runtime::CompiledRuntime rt(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kStatic, 512);
  for (int len : {20, 128, 512}) {
    EXPECT_EQ(rt.BatchComputeTime(1, len), rt.ComputeTime(len));
  }
}

TEST(BatchComputeTime, BatchingAmortizesTheFloor) {
  const runtime::CompiledRuntime rt(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kStatic, 512);
  const SimDuration single = rt.BatchComputeTime(1, 512);
  const SimDuration pair = rt.BatchComputeTime(2, 512);
  // Cheaper than two sequential runs (c0 paid once)…
  EXPECT_LT(pair, 2 * single);
  // …but more expensive than one (real extra matmul work).
  EXPECT_GT(pair, single);
}

TEST(BatchComputeTime, PowerOfTwoBuckets) {
  const runtime::CompiledRuntime rt(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kStatic, 512);
  // 3 rides the 4-bucket: identical latency.
  EXPECT_EQ(rt.BatchComputeTime(3, 256), rt.BatchComputeTime(4, 256));
  EXPECT_LT(rt.BatchComputeTime(4, 256), rt.BatchComputeTime(5, 256));
  EXPECT_EQ(rt.BatchComputeTime(5, 256), rt.BatchComputeTime(8, 256));
}

TEST(BatchComputeTime, MonotoneInBatchAndLength) {
  const runtime::CompiledRuntime rt(runtime::ModelSpec::BertLarge(),
                                    runtime::CompilationKind::kDynamic, 512);
  EXPECT_LE(rt.BatchComputeTime(2, 100), rt.BatchComputeTime(4, 100));
  EXPECT_LE(rt.BatchComputeTime(2, 100), rt.BatchComputeTime(2, 400));
}

TEST(BatchComputeTime, RejectsNonPositiveBatch) {
  const runtime::CompiledRuntime rt(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kStatic, 64);
  EXPECT_THROW(rt.BatchComputeTime(0, 10), std::logic_error);
}

TEST(BatchComputeTime, UpperPowerOfTwoBoundaries) {
  const runtime::CompiledRuntime rt(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kStatic, 512);
  // 9 rides the 16-bucket, exactly like 16 itself; 8 is strictly cheaper.
  EXPECT_EQ(rt.BatchComputeTime(9, 256), rt.BatchComputeTime(16, 256));
  EXPECT_LT(rt.BatchComputeTime(8, 256), rt.BatchComputeTime(9, 256));
  EXPECT_EQ(runtime::CompiledRuntime::BatchBucket(1), 1);
  EXPECT_EQ(runtime::CompiledRuntime::BatchBucket(3), 4);
  EXPECT_EQ(runtime::CompiledRuntime::BatchBucket(9), 16);
  EXPECT_EQ(runtime::CompiledRuntime::BatchBucket(16), 16);
}

TEST(BatchComputeTime, MonotoneInMaxLengthInBatch) {
  const runtime::CompiledRuntime rt(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kDynamic, 512);
  for (int b : {1, 3, 8}) {
    SimDuration prev = 0;
    for (int len = 64; len <= 512; len += 64) {
      const SimDuration cost = rt.BatchComputeTime(b, len);
      EXPECT_GE(cost, prev) << "batch " << b << " len " << len;
      prev = cost;
    }
  }
}

TEST(PaddedLength, StaticPadsToMaxDynamicToStaircase) {
  const runtime::CompiledRuntime st(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kStatic, 512);
  EXPECT_EQ(st.PaddedLength(10), 512);
  EXPECT_EQ(st.PaddedLength(512), 512);
  const runtime::CompiledRuntime dt(runtime::ModelSpec::BertBase(),
                                    runtime::CompilationKind::kDynamic, 512);
  EXPECT_EQ(dt.PaddedLength(10), 64);
  EXPECT_EQ(dt.PaddedLength(64), 64);
  EXPECT_EQ(dt.PaddedLength(65), 128);
}

TEST(EngineBatching, BatchedRunServesAllRequests) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 5.0;
  tc.mean_rate = 300.0;
  tc.seed = 1;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  baselines::ScenarioConfig config;
  config.gpus = 2;
  auto scheme = baselines::MakeSchemeByName("st", config);
  sim::EngineConfig engine;
  engine.max_batch = 4;
  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  EXPECT_EQ(result.records.size(), t.Size());
  for (const auto& r : result.records) {
    EXPECT_GT(r.completion, r.start);
  }
}

TEST(EngineBatching, RaisesThroughputUnderOverload) {
  // Same overloaded scenario with and without batching: batched serving
  // drains the backlog faster, cutting mean latency.
  trace::TwitterTraceConfig tc;
  tc.duration_s = 6.0;
  tc.mean_rate = 500.0;  // > 2-GPU ST capacity
  tc.seed = 2;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  auto run = [&](int max_batch) {
    baselines::ScenarioConfig config;
    config.gpus = 2;
    auto scheme = baselines::MakeSchemeByName("st", config);
    sim::EngineConfig engine;
    engine.max_batch = max_batch;
    const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
    return Summarize(result.records, Millis(150.0)).mean_ms;
  };
  const double unbatched = run(1);
  const double batched = run(8);
  EXPECT_LT(batched, unbatched * 0.7);
}

TEST(EngineBatching, NoEffectAtBatchOne) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 3.0;
  tc.mean_rate = 100.0;
  tc.seed = 3;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
  auto run = [&](int max_batch) {
    baselines::ScenarioConfig config;
    config.gpus = 2;
    auto scheme = baselines::MakeSchemeByName("dt", config);
    sim::EngineConfig engine;
    engine.max_batch = max_batch;
    return sim::RunScenario(t, *scheme, engine);
  };
  const sim::EngineResult a = run(1);
  // Re-running with max_batch=1 must be byte-identical (determinism).
  const sim::EngineResult b = run(1);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
  }
}

TEST(EngineBatching, GreedyPolicyIsByteIdenticalToDefault) {
  // The GreedyBatcher reproduces the historical inline opportunistic pull:
  // an explicit policy object must not change a single record.
  trace::TwitterTraceConfig tc;
  tc.duration_s = 4.0;
  tc.mean_rate = 400.0;
  tc.seed = 7;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
  const auto greedy = batch::MakeBatchPolicy("greedy");

  for (int max_batch = 1; max_batch <= 8; ++max_batch) {
    auto run = [&](const batch::BatchPolicy* policy) {
      baselines::ScenarioConfig config;
      config.gpus = 2;
      auto scheme = baselines::MakeSchemeByName("st", config);
      sim::EngineConfig engine;
      engine.max_batch = max_batch;
      engine.batch_policy = policy;
      return sim::RunScenario(t, *scheme, engine);
    };
    const sim::EngineResult a = run(nullptr);        // engine-owned default
    const sim::EngineResult b = run(greedy.get());   // explicit policy
    EXPECT_EQ(a.end_time, b.end_time) << "max_batch " << max_batch;
    EXPECT_EQ(a.batches_formed, b.batches_formed) << "max_batch " << max_batch;
    ASSERT_EQ(a.records.size(), b.records.size()) << "max_batch " << max_batch;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_EQ(a.records[i].id, b.records[i].id);
      EXPECT_EQ(a.records[i].dispatch, b.records[i].dispatch);
      EXPECT_EQ(a.records[i].start, b.records[i].start);
      EXPECT_EQ(a.records[i].completion, b.records[i].completion);
      EXPECT_EQ(a.records[i].instance, b.records[i].instance);
    }
  }
}

TEST(EngineBatching, SloPolicyServesEverythingAndWaits) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 5.0;
  tc.mean_rate = 300.0;
  tc.seed = 8;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
  baselines::ScenarioConfig config;
  config.gpus = 2;
  auto scheme = baselines::MakeSchemeByName("st", config);
  const auto policy = batch::MakeBatchPolicy("slo");
  sim::EngineConfig engine;
  engine.max_batch = 4;
  engine.batch_policy = policy.get();
  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  EXPECT_EQ(result.records.size(), t.Size());
  EXPECT_GT(result.batches_formed, 0u);
  // A waiting policy must actually batch: fewer launches than requests.
  EXPECT_LT(result.batches_formed, result.records.size());
}

TEST(EngineBatching, LengthPolicyServesEverythingOnDynamicRuntimes) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 5.0;
  tc.mean_rate = 400.0;
  tc.seed = 9;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
  baselines::ScenarioConfig config;
  config.gpus = 2;
  auto scheme = baselines::MakeSchemeByName("dt", config);
  const auto policy = batch::MakeBatchPolicy("length");
  sim::EngineConfig engine;
  engine.max_batch = 8;
  engine.batch_policy = policy.get();
  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  EXPECT_EQ(result.records.size(), t.Size());
  EXPECT_GT(result.batches_formed, 0u);
  EXPECT_EQ(result.batch_timeouts, 0u);  // this policy never waits
}

TEST(NewModels, CalibrationHoldsAcrossTheZoo) {
  for (const auto& model :
       {runtime::ModelSpec::RobertaLarge(), runtime::ModelSpec::DistilBert()}) {
    const runtime::LatencyCoefficients c = runtime::Calibrate(model);
    EXPECT_GT(c.k_ns_per_flop, 0.0) << model.name;
    EXPECT_GE(c.c0_ns, 0.0) << model.name;
    const double ratio = c.EvalNs(model, 512) / c.EvalNs(model, 64);
    EXPECT_NEAR(ratio, model.ratio_512_over_64, 1e-6) << model.name;
  }
}

TEST(NewModels, DollyUsesItsOwnTileStep) {
  EXPECT_EQ(runtime::DetectStaircaseStep(runtime::ModelSpec::Dolly()), 32);
  EXPECT_EQ(runtime::DetectStaircaseStep(runtime::ModelSpec::DistilBert()),
            64);
}

TEST(NewModels, ArloServesDistilBertEndToEnd) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 4.0;
  tc.mean_rate = 300.0;
  tc.seed = 4;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
  baselines::ScenarioConfig config;
  config.model = runtime::ModelSpec::DistilBert();
  config.gpus = 2;
  config.slo = Millis(50.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  EXPECT_EQ(result.records.size(), t.Size());
}

}  // namespace
}  // namespace arlo
