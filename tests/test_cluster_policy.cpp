// Routing-policy unit tests over fabricated NodeView snapshots, plus the
// probe-side helpers (statusz JSON scanning, admin query parsing) the
// router's decision loop depends on.  No sockets anywhere in this file.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/policy.h"
#include "cluster/router_admin.h"
#include "obs/probe.h"

namespace arlo::cluster {
namespace {

NodeView MakeNode(int id, bool routable = true, int inflight = 0,
                  std::int64_t est_delay_ns = 0,
                  std::vector<int> max_lengths = {}) {
  NodeView view;
  view.node = id;
  view.routable = routable;
  view.inflight = inflight;
  view.est_queue_delay_ns = est_delay_ns;
  view.worker_max_lengths = std::move(max_lengths);
  return view;
}

TEST(ClusterPolicy, FactoryKnowsEveryPolicyName) {
  for (const char* name : {"rr", "least-inflight", "queue-delay", "length"}) {
    auto policy = MakeRoutingPolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_STREQ(policy->Name(), name);
  }
  EXPECT_EQ(MakeRoutingPolicy("bogus"), nullptr);
}

TEST(ClusterPolicy, RoundRobinIsFairOverRoutableNodes) {
  RoundRobinPolicy policy;
  const std::vector<NodeView> nodes = {MakeNode(0), MakeNode(1), MakeNode(2)};
  std::map<int, int> picks;
  for (int i = 0; i < 300; ++i) ++picks[policy.Pick(128, nodes)];
  EXPECT_EQ(picks[0], 100);
  EXPECT_EQ(picks[1], 100);
  EXPECT_EQ(picks[2], 100);
}

TEST(ClusterPolicy, RoundRobinSkipsUnroutableNodes) {
  RoundRobinPolicy policy;
  const std::vector<NodeView> nodes = {MakeNode(0), MakeNode(1, false),
                                       MakeNode(2)};
  std::map<int, int> picks;
  for (int i = 0; i < 100; ++i) ++picks[policy.Pick(128, nodes)];
  EXPECT_EQ(picks.count(1), 0u);
  EXPECT_EQ(picks[0] + picks[2], 100);
  EXPECT_GT(picks[0], 0);
  EXPECT_GT(picks[2], 0);
}

TEST(ClusterPolicy, AllPoliciesReturnMinusOneWithNoRoutableNode) {
  const std::vector<NodeView> nodes = {MakeNode(0, false), MakeNode(1, false)};
  for (const char* name : {"rr", "least-inflight", "queue-delay", "length"}) {
    auto policy = MakeRoutingPolicy(name);
    EXPECT_EQ(policy->Pick(128, nodes), -1) << name;
    EXPECT_EQ(policy->Pick(128, {}), -1) << name << " (empty)";
  }
}

TEST(ClusterPolicy, LeastInflightPicksTheMinimum) {
  LeastInflightPolicy policy;
  const std::vector<NodeView> nodes = {MakeNode(0, true, 5),
                                       MakeNode(1, true, 2),
                                       MakeNode(2, true, 9)};
  EXPECT_EQ(policy.Pick(128, nodes), 1);
}

TEST(ClusterPolicy, LeastInflightRotatesAmongTies) {
  LeastInflightPolicy policy;
  const std::vector<NodeView> nodes = {MakeNode(0, true, 3),
                                       MakeNode(1, true, 1),
                                       MakeNode(2, true, 1)};
  std::map<int, int> picks;
  for (int i = 0; i < 100; ++i) ++picks[policy.Pick(128, nodes)];
  // Both minimum nodes share the picks; the loaded node gets none.
  EXPECT_EQ(picks.count(0), 0u);
  EXPECT_EQ(picks[1], 50);
  EXPECT_EQ(picks[2], 50);
}

TEST(ClusterPolicy, QueueDelaySteersAwayFromTheSkewedNode) {
  QueueDelayPolicy policy;
  // Node 1's backend queue is building (50 ms estimate vs 1 ms), even
  // though router-side inflight counts look identical.
  const std::vector<NodeView> nodes = {
      MakeNode(0, true, 4, 1'000'000), MakeNode(1, true, 4, 50'000'000),
      MakeNode(2, true, 4, 1'000'000)};
  std::map<int, int> picks;
  for (int i = 0; i < 100; ++i) ++picks[policy.Pick(128, nodes)];
  EXPECT_EQ(picks.count(1), 0u);
  EXPECT_EQ(picks[0] + picks[2], 100);
}

TEST(ClusterPolicy, EffectiveQueueDelayPricesRoutesSinceTheLastProbe) {
  NodeView view = MakeNode(0, true, /*inflight=*/10, /*est_delay_ns=*/0);
  // Probe saw the node idle (backlog 0, delay 0), but the router has since
  // routed 10 requests priced at 6 ms across 3 workers → 20 ms effective.
  view.backlog = 0;
  view.live_workers = 3;
  view.service_ewma_ns = 6'000'000;
  EXPECT_EQ(EffectiveQueueDelay(view), 10 * 2'000'000);

  // No service EWMA yet → raw probe value, whatever the inflight delta.
  view.service_ewma_ns = 0;
  view.est_queue_delay_ns = 7'000'000;
  EXPECT_EQ(EffectiveQueueDelay(view), 7'000'000);

  // Probe backlog already accounts for the in-flight work → no correction.
  view.service_ewma_ns = 6'000'000;
  view.backlog = 12;
  EXPECT_EQ(EffectiveQueueDelay(view), 7'000'000);
}

TEST(ClusterPolicy, QueueDelayDoesNotHerdOntoAStaleIdleProbe) {
  QueueDelayPolicy policy;
  // Node 0's probe is stale: it reported idle, but the router has dumped 20
  // requests on it since.  Node 1 reported a modest real queue.  Raw probe
  // comparison would herd every pick onto node 0 until the next probe.
  NodeView stale = MakeNode(0, true, /*inflight=*/20, /*est_delay_ns=*/0);
  stale.live_workers = 1;
  stale.service_ewma_ns = 5'000'000;
  NodeView honest = MakeNode(1, true, /*inflight=*/2, /*est_delay_ns=*/10'000'000);
  honest.backlog = 2;
  honest.live_workers = 1;
  honest.service_ewma_ns = 5'000'000;
  const std::vector<NodeView> nodes = {stale, honest};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(policy.Pick(128, nodes), 1);
}

TEST(ClusterPolicy, QueueDelayBreaksTiesOnInflight) {
  QueueDelayPolicy policy;
  const std::vector<NodeView> nodes = {MakeNode(0, true, 7, 1'000'000),
                                       MakeNode(1, true, 2, 1'000'000)};
  EXPECT_EQ(policy.Pick(128, nodes), 1);
}

TEST(ClusterPolicy, LengthAwareSteersToTheTightestFit) {
  LengthAwarePolicy policy;
  // Node 0 runs long-context workers (4096), node 1 short ones (512).
  // A 300-token request pads least on node 1; a 2000-token request only
  // fits on node 0.
  const std::vector<NodeView> nodes = {
      MakeNode(0, true, 0, 0, {4096, 4096}),
      MakeNode(1, true, 0, 0, {512, 512})};
  EXPECT_EQ(policy.Pick(300, nodes), 1);
  EXPECT_EQ(policy.Pick(2000, nodes), 0);
}

TEST(ClusterPolicy, LengthAwareFallsBackWhenNothingFits) {
  LengthAwarePolicy policy;
  // No worker fits 9000 tokens anywhere: the request must still route
  // (the backend buffers/demotes) rather than shed.
  const std::vector<NodeView> nodes = {
      MakeNode(0, true, 3, 0, {512}), MakeNode(1, true, 1, 0, {1024})};
  const int pick = policy.Pick(9000, nodes);
  EXPECT_EQ(pick, 1);  // equal (non-)fit, so least inflight wins
}

TEST(ClusterPolicy, LengthAwareIgnoresNodesWithoutProbesGracefully) {
  LengthAwarePolicy policy;
  // Probe-less nodes (admin disabled) expose no length profile; they act
  // as nothing-fits nodes, so a profiled node that fits wins.
  const std::vector<NodeView> nodes = {MakeNode(0),
                                       MakeNode(1, true, 0, 0, {1024})};
  EXPECT_EQ(policy.Pick(800, nodes), 1);
}

TEST(ClusterPolicy, StatuszParsingExtractsRouterRelevantFields) {
  const std::string body =
      "{\"time_s\":2.5,\"submitted\":120,\"completed\":100,\"inflight\":15,"
      "\"buffered\":5,\"live_workers\":3,\"peak_workers\":4,"
      "\"est_queue_delay_ns\":7500000,"
      "\"batches\":{\"formed\":10,\"timeouts\":1},"
      "\"workers\":["
      "{\"id\":0,\"runtime\":1,\"state\":\"ready\",\"max_length\":512,"
      "\"queued\":2,\"executing\":1},"
      "{\"id\":1,\"runtime\":2,\"state\":\"provisioning\","
      "\"max_length\":1024,\"queued\":0,\"executing\":0},"
      "{\"id\":2,\"runtime\":3,\"state\":\"ready\",\"max_length\":2048,"
      "\"queued\":1,\"executing\":1}],"
      "\"scheme\":{\"allocation\":[1,1]}}";
  obs::NodeProbe probe;
  obs::ParseStatusz(body, probe);
  EXPECT_DOUBLE_EQ(probe.time_s, 2.5);
  EXPECT_EQ(probe.submitted, 120);
  EXPECT_EQ(probe.completed, 100);
  EXPECT_EQ(probe.inflight, 15);
  EXPECT_EQ(probe.buffered, 5);
  EXPECT_EQ(probe.live_workers, 3);
  EXPECT_EQ(probe.est_queue_delay_ns, 7'500'000);
  // Only the two ready workers contribute to the length profile.
  EXPECT_EQ(probe.ready_worker_max_lengths, (std::vector<int>{512, 2048}));
}

TEST(ClusterPolicy, JsonFindNumberMissesAbsentKeys) {
  double value = -1.0;
  EXPECT_FALSE(obs::JsonFindNumber("{\"a\":1}", "b", value));
  EXPECT_TRUE(obs::JsonFindNumber("{\"a\":1,\"b\":-2.5}", "b", value));
  EXPECT_DOUBLE_EQ(value, -2.5);
  EXPECT_FALSE(obs::JsonFindNumber("{\"b\":\"str\"}", "b", value));
}

TEST(ClusterPolicy, QueryIntParsesAdminQueries) {
  std::int64_t value = 0;
  EXPECT_TRUE(QueryInt("node=3", "node", value));
  EXPECT_EQ(value, 3);
  EXPECT_TRUE(QueryInt("port=9000&admin=9001", "admin", value));
  EXPECT_EQ(value, 9001);
  EXPECT_FALSE(QueryInt("port=9000", "admin", value));
  EXPECT_FALSE(QueryInt("node=abc", "node", value));
  EXPECT_FALSE(QueryInt("", "node", value));
}

}  // namespace
}  // namespace arlo::cluster
