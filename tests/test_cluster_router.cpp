// Router-tier integration tests on 127.0.0.1: real LiveTestbed backends for
// the zero-loss multiplexing path, hand-driven raw-socket backends for the
// failure choreography (a kill has to happen with requests provably held in
// flight on the victim, which a real backend cannot stage).  These run
// under TSan in check.sh, so they double as the race proof for the
// router/pool thread structure.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/scenario.h"
#include "cluster/router.h"
#include "cluster/router_admin.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/http.h"
#include "serving/live_testbed.h"
#include "telemetry/sink.h"
#include "trace/twitter.h"

namespace arlo::cluster {
namespace {

using namespace std::chrono_literals;

/// A scriptable wire-protocol backend: echoes kOk replies (kEcho) or holds
/// every submit unanswered (kHold) so a test can kill it with requests
/// provably in flight.  Accepts any number of connections (the pool
/// reconnects on rejoin).
class FakeBackend {
 public:
  enum class Mode { kEcho, kHold };

  explicit FakeBackend(Mode mode) : mode_(mode), listen_(net::ListenTcp(0)) {
    acceptor_ = std::thread([this] { AcceptLoop(); });
  }

  ~FakeBackend() { Kill(); }

  std::uint16_t Port() const { return net::LocalPort(listen_.Get()); }

  int Received() const { return received_.load(std::memory_order_acquire); }

  /// Every submit frame this backend decoded, in arrival order.
  std::vector<net::SubmitRequest> Submits() const {
    std::lock_guard lock(mu_);
    return submits_;
  }

  /// Abrupt death: every socket closes mid-conversation.
  void Kill() {
    if (killed_.exchange(true)) return;
    ::shutdown(listen_.Get(), SHUT_RDWR);
    {
      std::lock_guard lock(mu_);
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptor_.joinable()) acceptor_.join();
    std::vector<std::thread> handlers;
    {
      std::lock_guard lock(mu_);
      handlers.swap(handlers_);
    }
    for (std::thread& handler : handlers) handler.join();
  }

 private:
  void AcceptLoop() {
    for (;;) {
      const int fd = ::accept(listen_.Get(), nullptr, nullptr);
      if (fd < 0) return;
      std::lock_guard lock(mu_);
      if (killed_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      conn_fds_.push_back(fd);
      handlers_.emplace_back([this, fd] { Handle(fd); });
    }
  }

  void Handle(int fd) {
    net::FrameDecoder decoder;
    std::uint8_t buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      decoder.Feed(buf, static_cast<std::size_t>(n));
      net::Frame frame;
      while (decoder.Next(frame) == net::FrameDecoder::Result::kFrame) {
        if (frame.type == net::MsgType::kSubmit) {
          std::lock_guard lock(mu_);
          submits_.push_back(frame.submit);
        }
        received_.fetch_add(1, std::memory_order_acq_rel);
        if (mode_ == Mode::kHold) continue;
        net::Reply reply;
        reply.id = frame.submit.id;
        reply.request_id = frame.submit.request_id;
        reply.status = net::ReplyStatus::kOk;
        reply.queue_ns = 1000;
        reply.service_ns = 1000;
        std::vector<std::uint8_t> bytes;
        EncodeReply(reply, bytes);
        std::size_t off = 0;
        while (off < bytes.size()) {
          const ssize_t sent = ::send(fd, bytes.data() + off,
                                      bytes.size() - off, MSG_NOSIGNAL);
          if (sent <= 0) return;
          off += static_cast<std::size_t>(sent);
        }
      }
    }
    ::close(fd);
  }

  Mode mode_;
  net::ScopedFd listen_;
  std::thread acceptor_;
  std::atomic<bool> killed_{false};
  std::atomic<int> received_{0};
  mutable std::mutex mu_;
  std::vector<int> conn_fds_;        // guarded by mu_
  std::vector<std::thread> handlers_;  // guarded by mu_
  std::vector<net::SubmitRequest> submits_;  // guarded by mu_
};

/// A port with nothing listening on it.
std::uint16_t DeadPort() {
  net::ScopedFd fd = net::ListenTcp(0);
  return net::LocalPort(fd.Get());
}

bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return done();
}

trace::Trace StableTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.pattern = trace::TwitterTraceConfig::Pattern::kStable;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

/// One real backend: scheme + testbed + wire server, bundled for tests
/// that want actual serving behavior behind the router.
struct RealNode {
  std::unique_ptr<sim::Scheme> scheme;
  std::unique_ptr<serving::LiveTestbed> testbed;
  std::unique_ptr<net::Server> server;

  explicit RealNode(double time_scale) {
    baselines::ScenarioConfig config;
    config.gpus = 1;
    scheme = baselines::MakeSchemeByName("st", config);
    serving::TestbedConfig tb;
    tb.time_scale = time_scale;
    testbed = std::make_unique<serving::LiveTestbed>(*scheme, tb);
    testbed->Start();
    server = std::make_unique<net::Server>(*testbed, net::ServerConfig{});
    server->Start();
  }

  ~RealNode() {
    server->Stop();
    (void)testbed->Finish();
  }

  NodeEndpoint Endpoint() const { return {"", server->Port(), 0}; }
};

// The headline multiplexing claim: a full trace through the router over
// three real backends comes back with zero loss, every reply kOk with the
// client's ids intact, and every node having served a nonzero share.
TEST(ClusterRouter, ThreeRealBackendsZeroLossAllNodesServe) {
  std::vector<std::unique_ptr<RealNode>> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(std::make_unique<RealNode>(1.0));

  telemetry::TelemetryConfig tc;
  tc.concurrency = telemetry::Concurrency::kMultiThreaded;
  telemetry::TelemetrySink sink(tc);

  RouterConfig rc;
  rc.policy = "least-inflight";
  for (const auto& node : nodes) rc.nodes.push_back(node->Endpoint());
  rc.sink = &sink;
  Router router(rc);
  router.Start();

  // ST on 1 GPU sustains ~175 req/s; 300 req/s over three nodes is ~57%
  // utilization, comfortable even under TSan.
  const trace::Trace t = StableTrace(300.0, 1.0, 31);
  net::LoadGeneratorConfig lg;
  lg.port = router.Port();
  lg.connections = 4;
  const net::LoadGeneratorResult result = RunLoadGenerator(t, lg);

  EXPECT_EQ(result.sent, t.Size());
  EXPECT_EQ(result.Lost(), 0u);
  EXPECT_EQ(result.CountByStatus(net::ReplyStatus::kOk), t.Size());
  for (const auto& r : result.requests) {
    ASSERT_TRUE(r.replied) << "request " << r.id;
    EXPECT_GT(r.service_ns, 0);
  }

  const Router::Stats stats = router.GetStats();
  EXPECT_EQ(stats.accepted, t.Size());
  EXPECT_EQ(stats.routed, t.Size());
  EXPECT_EQ(stats.replies, t.Size());
  EXPECT_EQ(stats.no_node, 0u);

  const std::vector<NodeStatus> status = router.Pool().Status();
  ASSERT_EQ(status.size(), 3u);
  std::int64_t total_routed = 0;
  for (const NodeStatus& n : status) {
    EXPECT_GT(n.routed, 0) << "node " << n.node << " served nothing";
    EXPECT_EQ(n.inflight, 0);
    total_routed += n.routed;
  }
  EXPECT_EQ(total_routed, static_cast<std::int64_t>(t.Size()));
  EXPECT_EQ(sink.Cluster().routed->Value(), t.Size());
  EXPECT_EQ(sink.Cluster().replies->Value(), t.Size());

  router.Stop();
}

// Kill one of three backends with requests provably held in flight on it:
// every one of those requests must be retried onto a survivor and every
// client submit must get a reply — zero loss.
TEST(ClusterRouter, NodeKillWithInflightRequestsLosesNothing) {
  FakeBackend victim(FakeBackend::Mode::kHold);
  FakeBackend survivor_a(FakeBackend::Mode::kEcho);
  FakeBackend survivor_b(FakeBackend::Mode::kEcho);

  telemetry::TelemetrySink sink;
  RouterConfig rc;
  rc.policy = "rr";  // deterministic spread: every third submit -> victim
  rc.nodes = {{"victim", victim.Port(), 0},
              {"a", survivor_a.Port(), 0},
              {"b", survivor_b.Port(), 0}};
  rc.sink = &sink;
  Router router(rc);
  router.Start();

  net::ClientConnection client(router.Port());
  constexpr int kRequests = 30;
  for (int i = 0; i < kRequests; ++i) {
    net::SubmitRequest submit;
    submit.id = static_cast<std::uint64_t>(i);
    submit.request_id = static_cast<std::uint64_t>(1000 + i);
    submit.length = 128;
    client.Send(submit);
  }

  // The victim holds its share unanswered; wait until it provably has
  // in-flight requests, then kill it.
  ASSERT_TRUE(WaitFor([&] { return victim.Received() >= 5; }));
  victim.Kill();

  std::vector<bool> answered(kRequests, false);
  for (int i = 0; i < kRequests; ++i) {
    net::Reply reply;
    ASSERT_TRUE(client.Receive(reply)) << "lost after " << i << " replies";
    EXPECT_EQ(reply.status, net::ReplyStatus::kOk);
    ASSERT_LT(reply.id, static_cast<std::uint64_t>(kRequests));
    EXPECT_FALSE(answered[reply.id]) << "duplicate reply " << reply.id;
    answered[reply.id] = true;
    EXPECT_EQ(reply.request_id, 1000 + reply.id);  // client token intact
  }

  const Router::Stats stats = router.GetStats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.replies, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.no_node, 0u);
  EXPECT_GT(sink.Cluster().retries->Value(), 0u);
  EXPECT_EQ(sink.Cluster().evictions->Value(), 1u);

  const std::vector<NodeStatus> status = router.Pool().Status();
  EXPECT_EQ(status[0].state, NodeState::kEvicted);

  router.Stop();
}

// Graceful drain: the drained node stops receiving new work, reaches
// kDrained once idle, and everything routes to the remaining node.
TEST(ClusterRouter, DrainStopsNewWorkAndCompletes) {
  FakeBackend a(FakeBackend::Mode::kEcho);
  FakeBackend b(FakeBackend::Mode::kEcho);

  RouterConfig rc;
  rc.policy = "rr";
  rc.nodes = {{"a", a.Port(), 0}, {"b", b.Port(), 0}};
  Router router(rc);
  router.Start();

  EXPECT_TRUE(router.DrainNode(0));
  EXPECT_FALSE(router.DrainNode(0));  // already draining/drained
  ASSERT_TRUE(WaitFor([&] {
    return router.Pool().Status()[0].state == NodeState::kDrained;
  }));

  const int before = a.Received();
  net::ClientConnection client(router.Port());
  for (int i = 0; i < 10; ++i) {
    net::SubmitRequest submit;
    submit.id = static_cast<std::uint64_t>(i);
    submit.length = 64;
    client.Send(submit);
  }
  for (int i = 0; i < 10; ++i) {
    net::Reply reply;
    ASSERT_TRUE(client.Receive(reply));
    EXPECT_EQ(reply.status, net::ReplyStatus::kOk);
  }
  EXPECT_EQ(a.Received(), before);  // drained node saw nothing new
  EXPECT_EQ(b.Received(), 10);
  EXPECT_TRUE(router.Healthy());  // one node still routable

  router.Stop();
}

// No routable backend: the router answers immediately with the explicit
// kRejectNoNode shed — a reply, not a dropped connection.
TEST(ClusterRouter, NoRoutableNodeShedsExplicitly) {
  RouterConfig rc;  // no nodes at all
  Router router(rc);
  router.Start();
  EXPECT_FALSE(router.Healthy());

  net::ClientConnection client(router.Port());
  net::SubmitRequest submit;
  submit.id = 7;
  submit.request_id = 77;
  submit.length = 128;
  client.Send(submit);
  net::Reply reply;
  ASSERT_TRUE(client.Receive(reply));
  EXPECT_EQ(reply.status, net::ReplyStatus::kRejectNoNode);
  EXPECT_EQ(reply.id, 7u);
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(router.GetStats().no_node, 1u);

  router.Stop();
}

// Probe-driven eviction: a node whose admin endpoint is dead gets evicted
// after N consecutive probe failures, and its held requests come back as
// explicit sheds (no survivors to retry onto) — still zero silent loss.
TEST(ClusterRouter, ProbeFailureEvictsAndShedsExplicitly) {
  FakeBackend backend(FakeBackend::Mode::kHold);

  telemetry::TelemetrySink sink;
  RouterConfig rc;
  rc.policy = "queue-delay";
  rc.nodes = {{"flaky", backend.Port(), DeadPort()}};  // admin never answers
  rc.probe_period = std::chrono::milliseconds(10);
  rc.probe_failures_to_evict = 2;
  rc.sink = &sink;
  Router router(rc);
  router.Start();

  net::ClientConnection client(router.Port());
  for (int i = 0; i < 3; ++i) {
    net::SubmitRequest submit;
    submit.id = static_cast<std::uint64_t>(i);
    submit.length = 64;
    client.Send(submit);
  }
  ASSERT_TRUE(WaitFor([&] { return backend.Received() == 3; }));

  // Eviction fires off the prober; the held requests re-route, find no
  // node, and shed explicitly.
  for (int i = 0; i < 3; ++i) {
    net::Reply reply;
    ASSERT_TRUE(client.Receive(reply)) << "lost after " << i;
    EXPECT_EQ(reply.status, net::ReplyStatus::kRejectNoNode);
  }
  EXPECT_FALSE(router.Healthy());
  EXPECT_EQ(router.Pool().Status()[0].state, NodeState::kEvicted);
  EXPECT_GE(sink.Cluster().probe_failures->Value(), 2u);
  EXPECT_EQ(sink.Cluster().evictions->Value(), 1u);

  router.Stop();
}

// Protocol compatibility through the router: a v4 submit carrying
// decode_len and tenant_class, and a hand-built v3 frame from a legacy
// client, both reach the backend with their fields intact (v3 lands in
// class 0) and both replies come back with client tokens preserved.
TEST(ClusterRouter, ForwardsDecodeLenAndTenantClassAcrossVersions) {
  FakeBackend backend(FakeBackend::Mode::kEcho);

  RouterConfig rc;
  rc.policy = "rr";
  rc.nodes = {{"a", backend.Port(), 0}};
  Router router(rc);
  router.Start();

  // v4 client: generative + tenant-tagged submit.
  net::ClientConnection client(router.Port());
  net::SubmitRequest submit;
  submit.id = 5;
  submit.request_id = 505;
  submit.length = 128;
  submit.decode_len = 48;
  submit.tenant_class = 2;
  client.Send(submit);
  net::Reply reply;
  ASSERT_TRUE(client.Receive(reply));
  EXPECT_EQ(reply.status, net::ReplyStatus::kOk);
  EXPECT_EQ(reply.id, 5u);
  EXPECT_EQ(reply.request_id, 505u);

  // v3 client: hand-built 36-byte-payload generative submit (decode_len
  // but no tenant_class) over a raw socket.
  net::ScopedFd raw = net::ConnectTcp(router.Port());
  std::vector<std::uint8_t> bytes = {
      38, 0, 0, 0, 3, static_cast<std::uint8_t>(net::MsgType::kSubmit)};
  auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u64(9u);    // id
  put_u64(909u);  // request_id
  put_u32(0u);    // model
  put_u32(256u);  // length
  put_u32(16u);   // decode_len
  put_u64(0u);    // deadline_ns
  ASSERT_EQ(bytes.size(), 4u + 38u);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent = ::send(raw.Get(), bytes.data() + off,
                                bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(sent, 0);
    off += static_cast<std::size_t>(sent);
  }
  net::FrameDecoder decoder;
  net::Frame frame;
  bool got = false;
  std::uint8_t buf[256];
  while (!got) {
    const ssize_t n = ::recv(raw.Get(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.Feed(buf, static_cast<std::size_t>(n));
    got = decoder.Next(frame) == net::FrameDecoder::Result::kFrame;
  }
  EXPECT_EQ(frame.type, net::MsgType::kReply);
  EXPECT_EQ(frame.reply.status, net::ReplyStatus::kOk);
  EXPECT_EQ(frame.reply.id, 9u);
  EXPECT_EQ(frame.reply.request_id, 909u);

  ASSERT_TRUE(WaitFor([&] { return backend.Received() == 2; }));
  const std::vector<net::SubmitRequest> seen = backend.Submits();
  ASSERT_EQ(seen.size(), 2u);
  const net::SubmitRequest& v4 = seen[0].id == 5u ? seen[0] : seen[1];
  const net::SubmitRequest& v3 = seen[0].id == 9u ? seen[0] : seen[1];
  EXPECT_EQ(v4.id, 5u);
  EXPECT_EQ(v4.decode_len, 48u);
  EXPECT_EQ(v4.tenant_class, 2u);
  EXPECT_EQ(v3.id, 9u);
  EXPECT_EQ(v3.length, 256u);
  EXPECT_EQ(v3.decode_len, 16u);
  EXPECT_EQ(v3.tenant_class, 0u);  // legacy clients land in class 0

  router.Stop();
}

// The admin plane end to end: statusz/healthz/metrics answer, drain and
// join actually mutate the pool, and a rejoined endpoint resurrects its
// old node id.
TEST(ClusterRouter, AdminPlaneDrivesLifecycle) {
  FakeBackend a(FakeBackend::Mode::kEcho);
  FakeBackend b(FakeBackend::Mode::kEcho);

  telemetry::TelemetrySink sink;
  RouterConfig rc;
  rc.policy = "queue-delay";
  rc.nodes = {{"a", a.Port(), 0}, {"b", b.Port(), 0}};
  rc.sink = &sink;
  Router router(rc);
  router.Start();
  auto admin = MakeRouterAdmin(router, &sink);
  admin->Start();
  const std::uint16_t port = admin->Port();

  obs::HttpResult health = obs::HttpFetch(port, "GET", "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);

  obs::HttpResult status = obs::HttpFetch(port, "GET", "/statusz");
  ASSERT_TRUE(status.ok);
  EXPECT_NE(status.body.find("\"policy\":\"queue-delay\""), std::string::npos);
  EXPECT_NE(status.body.find("\"nodes\":["), std::string::npos);

  obs::HttpResult metrics = obs::HttpFetch(port, "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_NE(metrics.body.find("arlo_cluster_routed_total"),
            std::string::npos);

  // Drain node 0 over HTTP.
  obs::HttpResult drain =
      obs::HttpFetch(port, "POST", "/cluster/drain?node=0");
  ASSERT_TRUE(drain.ok);
  EXPECT_EQ(drain.status, 200);
  ASSERT_TRUE(WaitFor([&] {
    return router.Pool().Status()[0].state == NodeState::kDrained;
  }));
  EXPECT_EQ(obs::HttpFetch(port, "POST", "/cluster/drain?node=0").status,
            409);
  EXPECT_EQ(obs::HttpFetch(port, "POST", "/cluster/drain").status, 400);

  // Rejoin the drained endpoint over HTTP: same node id comes back.
  obs::HttpResult join = obs::HttpFetch(
      port, "POST", "/cluster/join?port=" + std::to_string(a.Port()));
  ASSERT_TRUE(join.ok);
  EXPECT_EQ(join.status, 200);
  EXPECT_NE(join.body.find("{\"joined\":0}"), std::string::npos);
  EXPECT_EQ(router.Pool().Status()[0].state, NodeState::kHealthy);
  EXPECT_EQ(router.Pool().NumNodes(), 2);
  EXPECT_GE(sink.Cluster().joins->Value(), 3u);  // 2 initial + 1 rejoin
  EXPECT_EQ(sink.Cluster().drains->Value(), 1u);

  // The resurrected node serves again.
  net::ClientConnection client(router.Port());
  for (int i = 0; i < 8; ++i) {
    net::SubmitRequest submit;
    submit.id = static_cast<std::uint64_t>(i);
    submit.length = 64;
    client.Send(submit);
    net::Reply reply;
    ASSERT_TRUE(client.Receive(reply));
    EXPECT_EQ(reply.status, net::ReplyStatus::kOk);
  }

  admin->Stop();
  router.Stop();
}

}  // namespace
}  // namespace arlo::cluster
