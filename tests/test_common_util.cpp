#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "common/cli.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace arlo {
namespace {

TEST(TablePrinter, AlignsColumnsAndSeparatesHeader) {
  TablePrinter t("demo");
  t.SetHeader({"a", "bbbb"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t;
  t.SetHeader({"k", "v"});
  t.AddRow({"x", "1"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "k,v\nx,1\n");
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Int(-5), "-5");
}

TEST(CliFlags, ParsesKeyValueAndBareFlags) {
  const char* argv[] = {"prog", "--gpus=10", "--scale=paper", "--verbose"};
  CliFlags flags(4, argv);
  EXPECT_EQ(flags.GetInt("gpus", 0), 10);
  EXPECT_EQ(flags.GetString("scale", "small"), "paper");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_TRUE(flags.Has("gpus"));
  EXPECT_FALSE(flags.Has("nope"));
}

TEST(CliFlags, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(CliFlags(2, argv), std::invalid_argument);
}

TEST(CliFlags, BoolParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=no"};
  CliFlags flags(5, argv);
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(CliFlags, RejectUnknownThrowsOnUnqueriedFlag) {
  const char* argv[] = {"prog", "--rate=10", "--rat=20"};
  CliFlags flags(3, argv);
  (void)flags.GetDouble("rate", 0.0);
  try {
    flags.RejectUnknown();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // Names the offending flag and lists the valid schema.
    EXPECT_NE(what.find("--rat"), std::string::npos) << what;
    EXPECT_NE(what.find("--rate"), std::string::npos) << what;
  }
}

TEST(CliFlags, RejectUnknownPassesWhenAllFlagsQueried) {
  const char* argv[] = {"prog", "--rate=10", "--gpus=4"};
  CliFlags flags(3, argv);
  (void)flags.GetDouble("rate", 0.0);
  (void)flags.GetInt("gpus", 0);
  EXPECT_NO_THROW(flags.RejectUnknown());
}

TEST(CliFlags, RejectUnknownMessageIsSortedAndStable) {
  // Golden message: both lists are sorted regardless of argv / query order,
  // so tools can test against the exact text.
  const char* argv[] = {"prog", "--zeta=1", "--alpha=2"};
  CliFlags flags(3, argv);
  (void)flags.GetInt("mid", 0);
  (void)flags.GetInt("aardvark", 0);
  try {
    flags.RejectUnknown();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown flag(s): --alpha, --zeta "
                 "(valid flags: --aardvark, --mid)");
  }
}

TEST(CliFlags, RejectUnknownHonorsExtraKnown) {
  const char* argv[] = {"prog", "--pattern=bursty"};
  CliFlags flags(2, argv);
  // "pattern" is only read on some code paths; extra_known covers it.
  EXPECT_THROW(flags.RejectUnknown(), std::invalid_argument);
  EXPECT_NO_THROW(flags.RejectUnknown({"pattern"}));
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 21 * 2; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsAllTasksOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(100, 4, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallback) {
  int order_check = 0;
  ParallelFor(10, 1, [&order_check](std::size_t i) {
    // Serial path preserves order.
    EXPECT_EQ(order_check, static_cast<int>(i));
    ++order_check;
  });
  EXPECT_EQ(order_check, 10);
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  ParallelFor(0, 4, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace arlo
