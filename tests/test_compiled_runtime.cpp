#include "runtime/compiled_runtime.h"

#include <gtest/gtest.h>

namespace arlo::runtime {
namespace {

TEST(CompiledRuntime, StaticComputeIsConstantInRequestLength) {
  const CompiledRuntime rt(ModelSpec::BertBase(), CompilationKind::kStatic,
                           512);
  const SimDuration at_max = rt.ComputeTime(512);
  EXPECT_EQ(rt.ComputeTime(1), at_max);
  EXPECT_EQ(rt.ComputeTime(20), at_max);
  EXPECT_EQ(rt.ComputeTime(511), at_max);
}

// §2.2: a length-20 request on a max_length-512 static runtime observes
// 4.86 ms — the calibration anchor must surface end to end.
TEST(CompiledRuntime, PaperAnchorLatency) {
  const CompiledRuntime rt(ModelSpec::BertBase(), CompilationKind::kStatic,
                           512);
  EXPECT_NEAR(ToMillis(rt.ComputeTime(20)), 4.86, 0.01);
}

TEST(CompiledRuntime, StaircaseJumpsAt64Multiples) {
  const ModelSpec m = ModelSpec::BertBase();
  // Latency of runtimes compiled at 64 vs 65: a big jump.
  const CompiledRuntime rt64(m, CompilationKind::kStatic, 64);
  const CompiledRuntime rt65(m, CompilationKind::kStatic, 65);
  const CompiledRuntime rt128(m, CompilationKind::kStatic, 128);
  const double jump =
      static_cast<double>(rt65.ComputeTime(1)) / rt64.ComputeTime(1);
  EXPECT_GT(jump, 1.15);
  // Within the step (65..128), change is small (<5%).
  const double within =
      static_cast<double>(rt128.ComputeTime(1)) / rt65.ComputeTime(1);
  EXPECT_LT(within, 1.05);
  EXPECT_GE(within, 1.0);
}

TEST(CompiledRuntime, DynamicComputeGrowsWithLength) {
  const CompiledRuntime rt(ModelSpec::BertBase(), CompilationKind::kDynamic,
                           512);
  EXPECT_LT(rt.ComputeTime(20), rt.ComputeTime(200));
  EXPECT_LT(rt.ComputeTime(200), rt.ComputeTime(512));
}

// §2.2: dynamic-shape inflation is between 1.22x and 3.56x of the static
// latency at the same length.
TEST(CompiledRuntime, DynamicInflationWithinPaperRange) {
  const ModelSpec m = ModelSpec::BertBase();
  const CompiledRuntime dyn(m, CompilationKind::kDynamic, 512);
  for (int len : {16, 64, 128, 256, 512}) {
    const CompiledRuntime st(m, CompilationKind::kStatic, len);
    const double inflation =
        static_cast<double>(dyn.ComputeTime(len)) / st.ComputeTime(len);
    EXPECT_GE(inflation, 1.21) << len;
    EXPECT_LE(inflation, 3.57) << len;
  }
}

TEST(CompiledRuntime, DynamicBeatsPaddedStaticForShortRequests) {
  const ModelSpec m = ModelSpec::BertBase();
  const CompiledRuntime st512(m, CompilationKind::kStatic, 512);
  const CompiledRuntime dyn(m, CompilationKind::kDynamic, 512);
  // A length-20 request: dynamic computes ~64 tokens at ~3.3x inflation,
  // still far cheaper than the full padded 512 computation.
  EXPECT_LT(dyn.ComputeTime(20), st512.ComputeTime(20));
  // But near max length, dynamic is *slower* than static (inflation > 1).
  EXPECT_GT(dyn.ComputeTime(512), st512.ComputeTime(512));
}

TEST(CompiledRuntime, DollyInflationAveragesNear2point86) {
  const ModelSpec m = ModelSpec::Dolly();
  const CompiledRuntime dyn(m, CompilationKind::kDynamic, 512);
  double sum = 0.0;
  int n = 0;
  for (int len = 32; len <= 512; len += 32) {
    const CompiledRuntime st(m, CompilationKind::kStatic, len);
    sum += static_cast<double>(dyn.ComputeTime(len)) / st.ComputeTime(len);
    ++n;
  }
  EXPECT_NEAR(sum / n, 2.86, 0.35);  // Fig. 2c: mean 2.86x
}

TEST(CompiledRuntime, AcceptsBounds) {
  const CompiledRuntime rt(ModelSpec::BertBase(), CompilationKind::kStatic,
                           128);
  EXPECT_TRUE(rt.Accepts(1));
  EXPECT_TRUE(rt.Accepts(128));
  EXPECT_FALSE(rt.Accepts(0));
  EXPECT_FALSE(rt.Accepts(129));
  EXPECT_THROW(rt.ComputeTime(129), std::logic_error);
}

// §2.2: one trace clip wastes 80.6% of FLOPs on a 125-length runtime; check
// our padding-waste accounting on a comparable case.
TEST(CompiledRuntime, PaddingWasteFraction) {
  const CompiledRuntime st(ModelSpec::BertBase(), CompilationKind::kStatic,
                           512);
  EXPECT_GT(st.PaddingWasteFraction(20), 0.9);
  EXPECT_DOUBLE_EQ(st.PaddingWasteFraction(512), 0.0);
  const CompiledRuntime dyn(ModelSpec::BertBase(), CompilationKind::kDynamic,
                            512);
  EXPECT_DOUBLE_EQ(dyn.PaddingWasteFraction(20), 0.0);
}

TEST(CompiledRuntime, RejectsMaxLengthBeyondNative) {
  EXPECT_THROW(CompiledRuntime(ModelSpec::BertBase(),
                               CompilationKind::kStatic, 1024),
               std::logic_error);
}

TEST(SimulatedCompiler, TracksBuildCost) {
  SimulatedCompiler compiler;
  (void)compiler.Compile(ModelSpec::BertBase(), CompilationKind::kStatic, 64);
  const SimDuration static_cost = compiler.TotalBuildCost();
  (void)compiler.Compile(ModelSpec::BertBase(), CompilationKind::kDynamic,
                         512);
  EXPECT_EQ(compiler.ArtifactCount(), 2);
  // Dynamic (kernel tuning) is much more expensive than a static build.
  EXPECT_GT(compiler.TotalBuildCost() - static_cost, 10 * static_cost);
}

TEST(CompiledRuntime, DebugNameEncodesKindAndLength) {
  const CompiledRuntime rt(ModelSpec::BertBase(), CompilationKind::kStatic,
                           256);
  EXPECT_EQ(rt.DebugName(), "bert-base/static@256");
}

}  // namespace
}  // namespace arlo::runtime
