// Drift detection and demand windowing for the cluster Runtime Scheduler:
// the KS statistic, the gate's bootstrap/threshold/rebase protocol, and
// the sliding demand window the gate observes (src/ctrl/drift.h,
// src/ctrl/demand.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "ctrl/demand.h"
#include "ctrl/drift.h"

namespace arlo::ctrl {
namespace {

using Scrapes = std::vector<std::pair<int, std::vector<std::int64_t>>>;

constexpr std::int64_t kSecond = 1'000'000'000;

TEST(CtrlDrift, KsStatisticBasics) {
  // Identical mixes: no distance, at any scale.
  EXPECT_DOUBLE_EQ(KsStatistic({10, 10}, {10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(KsStatistic({10, 10}, {1000, 1000}), 0.0);
  // Disjoint mixes: all mass on opposite sides of one boundary.
  EXPECT_DOUBLE_EQ(KsStatistic({100, 0}, {0, 100}), 1.0);
  // Half the mass moved across the first boundary.
  EXPECT_NEAR(KsStatistic({100, 0}, {50, 50}), 0.5, 1e-12);
  // No evidence is not drift.
  EXPECT_DOUBLE_EQ(KsStatistic({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(KsStatistic({0, 0}, {5, 5}), 0.0);
}

TEST(CtrlDrift, BootstrapOpensGateOnceMinSamplesArrive) {
  DriftDetector detector(DriftDetectorConfig{0.1, 100});
  // Below the sample floor: closed even with no reference.
  auto decision = detector.Observe({40, 40});
  EXPECT_FALSE(decision.drifted);
  EXPECT_FALSE(decision.has_reference);
  // At the floor: the bootstrap re-plan fires.
  decision = detector.Observe({60, 60});
  EXPECT_TRUE(decision.drifted);
}

TEST(CtrlDrift, ThresholdGatesAgainstReference) {
  DriftDetector detector(DriftDetectorConfig{0.1, 10});
  detector.Rebase({1000, 0});
  // Same mix: closed.
  EXPECT_FALSE(detector.Observe({500, 0}).drifted);
  // 5% of mass moved: under the 10% threshold.
  EXPECT_FALSE(detector.Observe({950, 50}).drifted);
  // 20% moved: open, and the statistic reports the shift.
  const auto decision = detector.Observe({800, 200});
  EXPECT_TRUE(decision.drifted);
  EXPECT_NEAR(decision.ks, 0.2, 1e-12);
  // Rebasing onto the shifted mix closes the gate again.
  detector.Rebase({800, 200});
  EXPECT_FALSE(detector.Observe({80, 20}).drifted);
}

TEST(CtrlDrift, DemandModelFirstScrapeIsBaselineOnly) {
  // A node's first cumulative vector spans its whole lifetime, not one
  // scrape period — it must not enter the window.
  ClusterDemandModel model(2);
  model.Ingest(Scrapes{{7, {500, 300}}}, 0);
  EXPECT_EQ(model.WindowTotal(), 0);
  // The second scrape diffs against the baseline.
  model.Ingest(Scrapes{{7, {520, 310}}}, kSecond);
  EXPECT_EQ(model.Window(), (std::vector<std::int64_t>{20, 10}));
}

TEST(CtrlDrift, DemandModelSumsAcrossNodesAndRounds) {
  ClusterDemandModel model(2);
  model.Ingest(Scrapes{{0, {10, 0}}, {1, {0, 5}}}, 0);
  model.Ingest(Scrapes{{0, {25, 0}}, {1, {0, 9}}}, kSecond);
  model.Ingest(Scrapes{{0, {30, 2}}, {1, {1, 9}}}, 2 * kSecond);
  EXPECT_EQ(model.Window(), (std::vector<std::int64_t>{21, 6}));
  EXPECT_EQ(model.WindowTotal(), 27);
}

TEST(CtrlDrift, DemandModelHandlesNodeRestart) {
  ClusterDemandModel model(2);
  model.Ingest(Scrapes{{0, {100, 100}}}, 0);
  // Counts went backwards: the node restarted and re-counted from zero, so
  // its whole cumulative vector is this round's increment.
  model.Ingest(Scrapes{{0, {7, 3}}}, kSecond);
  EXPECT_EQ(model.Window(), (std::vector<std::int64_t>{7, 3}));
}

TEST(CtrlDrift, DemandModelExpiresRoundsBeyondSpan) {
  ClusterDemandModel model(1, /*span_ns=*/3 * kSecond);
  model.Ingest(Scrapes{{0, {0}}}, 0);
  model.Ingest(Scrapes{{0, {10}}}, 1 * kSecond);
  model.Ingest(Scrapes{{0, {30}}}, 2 * kSecond);
  EXPECT_EQ(model.WindowTotal(), 30);
  // At t=5s the t=1s round (covering (0,1s]) is fully outside the 3 s span
  // and expires; the t=2s round ends exactly at the span boundary and
  // survives (the window is closed: [now-span, now]).  The window's start
  // follows the newest expired round.
  model.Ingest(Scrapes{{0, {37}}}, 5 * kSecond);
  EXPECT_EQ(model.WindowTotal(), 27);
  EXPECT_DOUBLE_EQ(model.WindowSeconds(5 * kSecond), 4.0);
  // The next round pushes the t=2s increment out as well.
  model.Ingest(Scrapes{{0, {40}}}, 6 * kSecond);
  EXPECT_EQ(model.WindowTotal(), 10);
  EXPECT_DOUBLE_EQ(model.WindowSeconds(6 * kSecond), 4.0);
}

TEST(CtrlDrift, DemandPerSloScalesWindowRateToSloPeriod) {
  ClusterDemandModel model(2);
  model.Ingest(Scrapes{{0, {0, 0}}}, 0);
  model.Ingest(Scrapes{{0, {200, 100}}}, 2 * kSecond);
  // 100/s and 50/s over a 0.5 s SLO period.
  const auto demand = model.DemandPerSlo(2 * kSecond, 0.5);
  ASSERT_EQ(demand.size(), 2u);
  EXPECT_NEAR(demand[0], 50.0, 1e-9);
  EXPECT_NEAR(demand[1], 25.0, 1e-9);
  // A single scrape frames no interval: zero demand, not a division blowup.
  ClusterDemandModel fresh(2);
  fresh.Ingest(Scrapes{{0, {10, 10}}}, 0);
  EXPECT_DOUBLE_EQ(fresh.DemandPerSlo(0, 0.5)[0], 0.0);
}

TEST(CtrlDrift, ResetWindowKeepsCumulativeBaselines) {
  ClusterDemandModel model(1);
  model.Ingest(Scrapes{{0, {100}}}, 0);
  model.Ingest(Scrapes{{0, {150}}}, kSecond);
  EXPECT_EQ(model.WindowTotal(), 50);
  model.ResetWindow(kSecond);
  EXPECT_EQ(model.WindowTotal(), 0);
  // The next diff is against the pre-reset scrape, not a fresh baseline —
  // nothing is double-counted and nothing is lost.
  model.Ingest(Scrapes{{0, {180}}}, 2 * kSecond);
  EXPECT_EQ(model.WindowTotal(), 30);
  EXPECT_DOUBLE_EQ(model.WindowSeconds(2 * kSecond), 1.0);
}

TEST(CtrlDrift, DemandModelIgnoresMalformedShapes) {
  ClusterDemandModel model(2);
  model.Ingest(Scrapes{{0, {1, 2, 3}}}, 0);  // wrong bin count
  model.Ingest(Scrapes{{0, {1, 2, 3}}}, kSecond);
  EXPECT_EQ(model.WindowTotal(), 0);
}

}  // namespace
}  // namespace arlo::ctrl
