// Cluster Runtime Scheduler end-to-end on 127.0.0.1: two real frozen
// backends (LiveTestbed + AdminPlane, the live_serving --freeze-alloc
// wiring) under a ClusterScheduler driven round by round.  Pins the full
// control loop: scrape -> bootstrap plan -> delta apply, then a length-mix
// flip mid-run -> drift fire -> second plan -> the fleet's allocation
// actually changes — with every submitted request completing (zero-loss
// reallocation).  CtrlLive.* runs under TSan and ASan in check.sh: scrapes
// and POST /realloc race live dispatch and worker replacement.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/scenario.h"
#include "ctrl/scheduler.h"
#include "obs/admin_server.h"
#include "obs/probe.h"
#include "runtime/profiler.h"
#include "runtime/runtime_set.h"
#include "serving/live_testbed.h"
#include "telemetry/sink.h"

namespace arlo::ctrl {
namespace {

using namespace std::chrono_literals;

bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds budget = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return done();
}

/// One backend node the way live_serving --listen --freeze-alloc builds it:
/// frozen arlo scheme, live testbed exporting the length mix, admin plane
/// accepting POST /realloc.
struct CtrlBackend {
  std::unique_ptr<sim::Scheme> scheme;
  std::unique_ptr<serving::LiveTestbed> testbed;
  std::unique_ptr<obs::AdminPlane> plane;
  std::uint64_t submitted = 0;

  CtrlBackend(const baselines::ScenarioConfig& config,
              const std::vector<int>& mix_bounds) {
    scheme = baselines::MakeSchemeByName("arlo", config);
    serving::TestbedConfig tb;
    tb.time_scale = 0.02;  // 50x: worker replacement costs 1 s of sim time
    tb.mix_bounds = mix_bounds;
    testbed = std::make_unique<serving::LiveTestbed>(*scheme, tb);
    testbed->Start();

    obs::AdminPlaneConfig apc;
    apc.statusz = [this](std::ostream& os) { testbed->WriteStatusJson(os); };
    apc.healthz = [this] {
      obs::AdminPlaneConfig::HealthzReport report;
      report.ok = testbed->Health().ok;
      return report;
    };
    apc.now = [this] { return testbed->Now(); };
    apc.realloc = [this](const std::vector<int>& allocation) {
      return testbed->ApplyAllocation(allocation);
    };
    plane = std::make_unique<obs::AdminPlane>(std::move(apc));
    plane->Start();
  }

  ~CtrlBackend() {
    plane->Stop();
    (void)testbed->Finish();
  }

  void Submit(int count, int length) {
    for (int i = 0; i < count; ++i) {
      Request r;
      r.id = static_cast<RequestId>(++submitted);
      r.arrival = testbed->Now();
      r.length = length;
      testbed->Submit(r);
    }
  }

  obs::NodeProbe Probe() const {
    return obs::ProbeAdminEndpoint(plane->Port());
  }
};

TEST(CtrlLive, DriftReplansFleetMidRunWithZeroLoss) {
  baselines::ScenarioConfig config;
  config.model = runtime::ModelSpec::BertBase();
  config.gpus = 2;
  config.slo = Millis(150.0);
  config.enable_reallocation = false;  // frozen: only POST /realloc moves it
  const auto runtimes = baselines::MakeRuntimeSetFor(config);

  std::vector<std::unique_ptr<CtrlBackend>> nodes;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(
        std::make_unique<CtrlBackend>(config, runtimes->BinUpperBounds()));
  }
  // Every GPU boots on the largest runtime (empty initial demand).
  for (const auto& node : nodes) {
    const obs::NodeProbe probe = node->Probe();
    ASSERT_EQ(probe.ready_worker_runtimes.size(), 2u);
    for (int rt : probe.ready_worker_runtimes) {
      EXPECT_EQ(rt, static_cast<int>(runtimes->Size()) - 1);
    }
  }

  ClusterSchedulerConfig cc;
  for (std::size_t i = 0; i < runtimes->Size(); ++i) {
    cc.profiles.push_back(runtime::ProfileRuntime(
        runtimes->Runtime(static_cast<RuntimeId>(i)), config.slo,
        static_cast<RuntimeId>(i), Millis(0.8)));
  }
  cc.slo_seconds = 0.15;
  cc.ks_threshold = 0.1;
  cc.min_window_samples = 20;
  cc.window_span_s = 60.0;  // rounds are hand-driven; never expire mid-test
  std::vector<CtrlNode> targets;
  for (int i = 0; i < 2; ++i) {
    targets.push_back(CtrlNode{i, nodes[static_cast<std::size_t>(i)]
                                      ->plane->Port()});
  }
  ClusterScheduler scheduler([targets] { return targets; }, std::move(cc));

  // Phase 1: a short-length flow.  The first round only baselines the
  // nodes' cumulative counters; once fresh counts land, the bootstrap plan
  // fires and ships deltas converting part of the fleet to small runtimes.
  ClusterScheduler::RoundReport report;
  bool bootstrapped = false;
  for (int round = 0; round < 50 && !bootstrapped; ++round) {
    for (auto& node : nodes) node->Submit(10, 48);
    std::this_thread::sleep_for(20ms);
    report = scheduler.RunOnce();
    bootstrapped = report.replanned && report.deltas_applied > 0;
  }
  ASSERT_TRUE(bootstrapped) << "bootstrap plan never shipped";
  EXPECT_FALSE(report.target.empty());
  EXPECT_GT(report.target[0], 0) << "short flow must buy small runtimes";

  // The rollout completes: no pending launches, and some ready worker now
  // runs a non-largest runtime.
  ASSERT_TRUE(WaitFor([&] {
    for (const auto& node : nodes) {
      const obs::NodeProbe probe = node->Probe();
      if (probe.pending_launches > 0) return false;
    }
    const ClusterScheduler::RoundReport r = scheduler.RunOnce();
    return r.nodes_reachable == 2 && !r.settle_hold;
  }));
  const auto MinReadyRuntime = [&] {
    int min_rt = static_cast<int>(runtimes->Size());
    for (const auto& node : nodes) {
      for (int rt : node->Probe().ready_worker_runtimes) {
        min_rt = std::min(min_rt, rt);
      }
    }
    return min_rt;
  };
  ASSERT_TRUE(WaitFor([&] {
    return MinReadyRuntime() < static_cast<int>(runtimes->Size()) - 1;
  }));
  const int phase1_min_rt = MinReadyRuntime();

  // Phase 2: the mix flips to mid lengths the small runtimes cannot serve.
  // The KS gate must fire and the second plan must change the fleet again.
  const std::uint64_t replans_before = scheduler.GetStats().replans;
  bool replanned = false;
  for (int round = 0; round < 100 && !replanned; ++round) {
    for (auto& node : nodes) node->Submit(10, 200);
    std::this_thread::sleep_for(20ms);
    report = scheduler.RunOnce();
    replanned = report.replanned && report.deltas_applied > 0 &&
                scheduler.GetStats().replans > replans_before;
  }
  ASSERT_TRUE(replanned) << "drift never re-planned the fleet";
  EXPECT_GT(report.ks, 0.1);

  // The fleet's deployment moved: a runtime fitting length 200 appears
  // where the phase-1 deployment had none below the largest except the
  // short-flow runtime.
  const int mid_bin = static_cast<int>(runtimes->IdealRuntimeFor(200));
  ASSERT_TRUE(WaitFor([&] {
    for (const auto& node : nodes) {
      for (int rt : node->Probe().ready_worker_runtimes) {
        if (rt >= mid_bin && rt < static_cast<int>(runtimes->Size()) - 1 &&
            rt != phase1_min_rt) {
          return true;
        }
      }
    }
    return false;
  })) << "no mid-runtime worker ever appeared";

  // Zero loss: every submitted request completes; the nodes report the
  // applied reallocations.
  std::uint64_t total_submitted = 0;
  std::int64_t total_applied = 0;
  for (auto& node : nodes) {
    node->testbed->Drain();
    total_submitted += node->submitted;
    const obs::NodeProbe probe = node->Probe();
    EXPECT_EQ(probe.completed, static_cast<std::int64_t>(node->submitted));
    total_applied += probe.reallocs_applied;
  }
  EXPECT_GT(total_submitted, 0u);
  EXPECT_GE(total_applied, 2);
  EXPECT_EQ(scheduler.GetStats().deltas_rejected +
                scheduler.GetStats().deltas_applied,
            scheduler.GetStats().deltas_shipped);
}

}  // namespace
}  // namespace arlo::ctrl
