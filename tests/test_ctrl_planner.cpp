// Delta planner for the cluster Runtime Scheduler (src/ctrl/planner.h):
// per-node floor enforcement, delta shipping (only changed nodes), the
// validation that refuses mid-rollout cluster shapes, and the seeded
// byte-identical determinism the delta wire format depends on.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ctrl/planner.h"

namespace arlo::ctrl {
namespace {

int Sum(const std::vector<int>& v) {
  int total = 0;
  for (int x : v) total += x;
  return total;
}

TEST(CtrlPlanner, EnforcePerNodeFloorRaisesLargestRuntime) {
  std::vector<int> target{6, 0, 0};
  ASSERT_TRUE(EnforcePerNodeFloor(target, 3));
  EXPECT_EQ(target, (std::vector<int>{3, 0, 3}));

  // Already satisfied: untouched.
  target = {2, 0, 4};
  ASSERT_TRUE(EnforcePerNodeFloor(target, 3));
  EXPECT_EQ(target, (std::vector<int>{2, 0, 4}));

  // Pays from the most-populated donor first.
  target = {1, 4, 0};
  ASSERT_TRUE(EnforcePerNodeFloor(target, 2));
  EXPECT_EQ(target, (std::vector<int>{1, 2, 2}));
  EXPECT_EQ(Sum(target), 5);

  // Fewer GPUs than nodes: no sane floor exists.
  target = {1, 0, 1};
  EXPECT_FALSE(EnforcePerNodeFloor(target, 3));
}

TEST(CtrlPlanner, ConformingFleetYieldsNoDeltas) {
  const std::vector<NodeAllocation> fleet{
      {0, {2, 0, 1}},
      {1, {1, 1, 1}},
  };
  EXPECT_TRUE(PlanNodeDeltas(fleet, {3, 1, 2}).empty());
}

TEST(CtrlPlanner, OnlyChangedNodesGetDeltas) {
  // Moving one GPU from runtime 0 to runtime 1 is a single-node delta;
  // the other node's allocation already matches where the plan leaves it.
  const std::vector<NodeAllocation> fleet{
      {0, {2, 0, 1}},
      {1, {2, 0, 1}},
  };
  const auto deltas = PlanNodeDeltas(fleet, {3, 1, 2});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(Sum(deltas[0].target), 3);  // node GPU totals never change
  EXPECT_GE(deltas[0].target.back(), 1);  // per-node Eq. 7 floor held
}

TEST(CtrlPlanner, RefusesMismatchedClusterSums) {
  // A scrape taken mid-rollout undercounts the fleet (5 ready GPUs against
  // a 6-GPU target): the planner must refuse rather than strand a GPU.
  const std::vector<NodeAllocation> fleet{
      {0, {1, 0, 1}},
      {1, {1, 1, 1}},
  };
  EXPECT_TRUE(PlanNodeDeltas(fleet, {2, 2, 2}).empty());
  // A target that cannot give every node its largest-runtime floor GPU is
  // likewise refused outright.
  EXPECT_TRUE(PlanNodeDeltas(fleet, {3, 1, 1}).empty());
}

TEST(CtrlPlanner, NeverStripsANodesLastLargestRuntimeGpu) {
  // Cluster has surplus largest-runtime GPUs, but node 0 holds exactly one
  // — every conversion must come from node 1's stack.
  const std::vector<NodeAllocation> fleet{
      {0, {0, 0, 1}},
      {1, {0, 0, 3}},
  };
  const auto deltas = PlanNodeDeltas(fleet, {2, 0, 2});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].node, 1);
  EXPECT_EQ(deltas[0].target, (std::vector<int>{2, 0, 1}));
}

TEST(CtrlPlanner, SeededDeterminismByteIdenticalDeltas) {
  // Identical inputs must produce byte-identical wire payloads, whatever
  // order the scrape delivered the nodes in.
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<int> gpus(0, 3);
  for (int round = 0; round < 50; ++round) {
    std::vector<NodeAllocation> fleet;
    for (int n = 0; n < 4; ++n) {
      NodeAllocation a;
      a.node = n;
      a.per_runtime = {gpus(rng), gpus(rng), 1 + gpus(rng)};
      fleet.push_back(a);
    }
    std::vector<int> target(3, 0);
    for (const auto& n : fleet) {
      for (std::size_t r = 0; r < 3; ++r) target[r] += n.per_runtime[r];
    }
    // Shuffle the cluster target while keeping it realizable.
    for (int moves = 0; moves < 4; ++moves) {
      std::uniform_int_distribution<std::size_t> pick(0, 2);
      const std::size_t from = pick(rng);
      const std::size_t to = pick(rng);
      if (target[from] > 0) {
        --target[from];
        ++target[to];
      }
    }
    if (!EnforcePerNodeFloor(target, static_cast<int>(fleet.size()))) {
      continue;
    }

    const auto first = PlanNodeDeltas(fleet, target);
    std::vector<NodeAllocation> reversed(fleet.rbegin(), fleet.rend());
    const auto second = PlanNodeDeltas(reversed, target);

    ASSERT_EQ(first.size(), second.size()) << "round " << round;
    std::vector<int> applied(3, 0);
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].node, second[i].node) << "round " << round;
      EXPECT_EQ(FormatAllocation(first[i].target),
                FormatAllocation(second[i].target))
          << "round " << round;
      EXPECT_GE(first[i].target.back(), 1) << "round " << round;
    }
    // The plan realizes the cluster target exactly.
    std::vector<int> cluster(3, 0);
    for (const auto& n : fleet) {
      bool replaced = false;
      for (const auto& d : first) {
        if (d.node == n.node) {
          for (std::size_t r = 0; r < 3; ++r) cluster[r] += d.target[r];
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        for (std::size_t r = 0; r < 3; ++r) cluster[r] += n.per_runtime[r];
      }
    }
    EXPECT_EQ(cluster, target) << "round " << round;
  }
}

TEST(CtrlPlanner, FormatAllocationWireShape) {
  EXPECT_EQ(FormatAllocation({}), "");
  EXPECT_EQ(FormatAllocation({5}), "5");
  EXPECT_EQ(FormatAllocation({0, 2, 10}), "0,2,10");
}

}  // namespace
}  // namespace arlo::ctrl
