#include "core/distribution_tracker.h"

#include <gtest/gtest.h>

namespace arlo::core {
namespace {

TEST(DistributionTracker, ColdStartReportsZeroDemand) {
  DistributionTracker t(512);
  const auto demand = t.DemandPerSlo({64, 512}, 0.15);
  EXPECT_DOUBLE_EQ(demand[0], 0.0);
  EXPECT_DOUBLE_EQ(demand[1], 0.0);
}

TEST(DistributionTracker, DemandSplitsByBinAndScalesToSlo) {
  DistributionTracker t(512, /*decay=*/1.0);
  // 300 short + 100 long requests over a 10-second period => 40 req/s.
  for (int i = 0; i < 300; ++i) t.Observe(30);
  for (int i = 0; i < 100; ++i) t.Observe(400);
  t.RollPeriod(10.0);
  // SLO window 0.5 s => 20 requests per window: 15 short, 5 long.
  const auto demand = t.DemandPerSlo({64, 512}, 0.5);
  EXPECT_NEAR(demand[0], 15.0, 1e-9);
  EXPECT_NEAR(demand[1], 5.0, 1e-9);
  EXPECT_NEAR(t.EstimatedRate(), 40.0, 1e-9);
}

TEST(DistributionTracker, DecayWeighsRecentPeriods) {
  DistributionTracker t(512, /*decay=*/0.5);
  for (int i = 0; i < 100; ++i) t.Observe(30);  // period 1: all short
  t.RollPeriod(10.0);
  for (int i = 0; i < 100; ++i) t.Observe(400);  // period 2: all long
  t.RollPeriod(10.0);
  const auto demand = t.DemandPerSlo({64, 512}, 1.0);
  // Recent (long) weight 100, old (short) decayed to 50 → 2:1 split.
  EXPECT_NEAR(demand[1] / demand[0], 2.0, 1e-6);
}

TEST(DistributionTracker, CurrentPeriodCountResetsOnRoll) {
  DistributionTracker t(100);
  t.Observe(5);
  t.Observe(6);
  EXPECT_EQ(t.CurrentPeriodCount(), 2u);
  t.RollPeriod(1.0);
  EXPECT_EQ(t.CurrentPeriodCount(), 0u);
}

TEST(DistributionTracker, RateSmoothingBlendsPeriods) {
  DistributionTracker t(100);
  for (int i = 0; i < 100; ++i) t.Observe(10);
  t.RollPeriod(1.0);  // 100 req/s
  t.RollPeriod(1.0);  // 0 req/s → smoothed 50
  EXPECT_NEAR(t.EstimatedRate(), 50.0, 1e-9);
}

TEST(DistributionTracker, RejectsBadPeriod) {
  DistributionTracker t(100);
  EXPECT_THROW(t.RollPeriod(0.0), std::logic_error);
}

}  // namespace
}  // namespace arlo::core
