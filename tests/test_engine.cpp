#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/multi_level_queue.h"
#include "runtime/runtime_set.h"

namespace arlo::sim {
namespace {

/// Minimal controllable scheme: one static runtime, N instances, least-
/// loaded dispatch; exposes hooks the tests poke directly.
class TestScheme : public Scheme {
 public:
  TestScheme(int instances, int max_length = 512)
      : instances_(instances), queue_(1) {
    runtime::SimulatedCompiler compiler;
    rt_ = compiler.Compile(runtime::ModelSpec::BertBase(),
                           runtime::CompilationKind::kStatic, max_length);
  }

  std::string Name() const override { return "test"; }

  void Setup(ClusterOps& cluster) override {
    for (int i = 0; i < instances_; ++i) {
      cluster.LaunchInstance(0, rt_, launch_delay_);
    }
  }

  InstanceId SelectInstance(const Request&, ClusterOps&) override {
    const auto head = queue_.Head(0);
    return head ? head->id : kInvalidInstance;
  }

  void OnDispatched(const Request&, InstanceId id) override {
    queue_.OnDispatch(id);
  }

  void OnComplete(const RequestRecord& record, ClusterOps& cluster) override {
    queue_.OnComplete(record.instance);
    ++completions_;
    if (retire_after_ > 0 && completions_ == retire_after_) {
      // Retire the instance that just completed and replace it.
      queue_.RemoveInstance(record.instance);
      cluster.RetireInstance(record.instance);
      cluster.LaunchInstance(0, rt_, Seconds(1.0));
    }
  }

  void OnInstanceReady(InstanceId id, RuntimeId runtime) override {
    queue_.AddInstance(id, runtime, 1000);
    ++ready_events_;
  }

  void OnInstanceRetired(InstanceId) override { ++retired_events_; }

  SimDuration ComputeTime(int length) const { return rt_->ComputeTime(length); }

  std::shared_ptr<const runtime::CompiledRuntime> rt_;
  int instances_;
  core::MultiLevelQueue queue_;
  SimDuration launch_delay_ = 0;
  int retire_after_ = 0;
  int completions_ = 0;
  int ready_events_ = 0;
  int retired_events_ = 0;
};

trace::Trace MakeTrace(std::vector<std::pair<double, int>> arrivals_ms_len) {
  std::vector<Request> reqs;
  for (const auto& [ms, len] : arrivals_ms_len) {
    reqs.push_back({0, Millis(ms), len});
  }
  return trace::Trace(std::move(reqs));
}

TEST(Engine, SingleRequestLatencyIsOverheadPlusCompute) {
  TestScheme scheme(1);
  const trace::Trace t = MakeTrace({{10.0, 100}});
  EngineConfig config;
  config.per_request_overhead = Millis(0.8);
  const EngineResult result = RunScenario(t, scheme, config);
  ASSERT_EQ(result.records.size(), 1u);
  const RequestRecord& r = result.records[0];
  EXPECT_EQ(r.arrival, Millis(10.0));
  EXPECT_EQ(r.dispatch, r.arrival);  // dispatched immediately
  EXPECT_EQ(r.start, r.arrival);
  EXPECT_EQ(r.Latency(), Millis(0.8) + scheme.ComputeTime(100));
}

TEST(Engine, QueuedRequestsSerialize) {
  TestScheme scheme(1);
  // Two simultaneous arrivals on one instance: the second waits.
  const trace::Trace t = MakeTrace({{10.0, 100}, {10.0, 100}});
  const EngineResult result = RunScenario(t, scheme, EngineConfig{});
  ASSERT_EQ(result.records.size(), 2u);
  const SimDuration service = result.records[0].ServiceTime();
  EXPECT_EQ(result.records[1].QueueingDelay(), service);
  EXPECT_EQ(result.records[1].Latency(), 2 * service);
}

TEST(Engine, TwoInstancesRunInParallel) {
  TestScheme scheme(2);
  const trace::Trace t = MakeTrace({{10.0, 100}, {10.0, 100}});
  const EngineResult result = RunScenario(t, scheme, EngineConfig{});
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].QueueingDelay(), 0);
  EXPECT_EQ(result.records[1].QueueingDelay(), 0);
  EXPECT_NE(result.records[0].instance, result.records[1].instance);
}

TEST(Engine, BuffersUntilInstanceReady) {
  TestScheme scheme(1);
  scheme.launch_delay_ = Seconds(2.0);
  const trace::Trace t = MakeTrace({{10.0, 100}});
  const EngineResult result = RunScenario(t, scheme, EngineConfig{});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.buffered_requests, 1u);
  EXPECT_EQ(result.records[0].dispatch, Seconds(2.0));
}

TEST(Engine, RetirementReDispatchesQueuedWork) {
  TestScheme scheme(1);
  scheme.retire_after_ = 1;  // retire after the first completion
  // Three stacked requests: first completes, then the instance retires
  // with two queued; they re-dispatch to the 1 s replacement.
  const trace::Trace t = MakeTrace({{1.0, 100}, {1.0, 100}, {1.0, 100}});
  const EngineResult result = RunScenario(t, scheme, EngineConfig{});
  EXPECT_EQ(result.records.size(), 3u);
  EXPECT_EQ(scheme.retired_events_, 1);
  EXPECT_EQ(scheme.ready_events_, 2);
  // The re-dispatched requests completed on the new instance.
  EXPECT_EQ(result.records[1].instance, 1u);
  EXPECT_EQ(result.records[2].instance, 1u);
  // Latency accounting is preserved across re-dispatch.
  EXPECT_GT(result.records[1].Latency(), Seconds(1.0));
}

TEST(Engine, GpuTimeAccounting) {
  TestScheme scheme(3);
  const trace::Trace t = MakeTrace({{5.0, 100}});
  const EngineResult result = RunScenario(t, scheme, EngineConfig{});
  EXPECT_EQ(result.peak_gpus, 3);
  EXPECT_NEAR(result.time_weighted_gpus, 3.0, 1e-6);
  EXPECT_GT(result.gpu_busy_fraction, 0.0);
  EXPECT_LT(result.gpu_busy_fraction, 1.0);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [] {
    TestScheme scheme(2);
    const trace::Trace t = MakeTrace(
        {{1.0, 64}, {1.5, 128}, {2.0, 256}, {2.0, 32}, {3.0, 512}});
    return RunScenario(t, scheme, EngineConfig{});
  };
  const EngineResult a = run();
  const EngineResult b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
    EXPECT_EQ(a.records[i].instance, b.records[i].instance);
  }
}

TEST(Engine, AllRequestsConserved) {
  TestScheme scheme(2);
  std::vector<std::pair<double, int>> arrivals;
  for (int i = 0; i < 200; ++i) {
    arrivals.push_back({static_cast<double>(i % 50), 1 + (i * 13) % 512});
  }
  const trace::Trace t = MakeTrace(arrivals);
  const EngineResult result = RunScenario(t, scheme, EngineConfig{});
  EXPECT_EQ(result.records.size(), 200u);
  std::vector<bool> seen(200, false);
  for (const auto& r : result.records) {
    EXPECT_FALSE(seen[r.id]);
    seen[r.id] = true;
    EXPECT_GE(r.dispatch, r.arrival);
    EXPECT_GE(r.start, r.dispatch);
    EXPECT_GT(r.completion, r.start);
  }
}

TEST(Engine, CollectRecordsOff) {
  TestScheme scheme(1);
  const trace::Trace t = MakeTrace({{1.0, 100}});
  EngineConfig config;
  config.collect_records = false;
  const EngineResult result = RunScenario(t, scheme, config);
  EXPECT_TRUE(result.records.empty());
  EXPECT_GT(result.end_time, 0);
}

TEST(Engine, EmptyTraceCompletesImmediately) {
  TestScheme scheme(1);
  const EngineResult result = RunScenario(trace::Trace{}, scheme);
  EXPECT_TRUE(result.records.empty());
}

TEST(Engine, MaxSimTimeGuardFires) {
  TestScheme scheme(1);
  scheme.launch_delay_ = Seconds(100.0);
  const trace::Trace t = MakeTrace({{1.0, 100}});
  EngineConfig config;
  config.max_sim_time = Seconds(10.0);
  EXPECT_THROW(RunScenario(t, scheme, config), std::logic_error);
}

}  // namespace
}  // namespace arlo::sim
