#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace arlo::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(42, [&order, i] { order.push_back(i); });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  EXPECT_EQ(q.Now(), 0);
  q.Schedule(100, [&q] { EXPECT_EQ(q.Now(), 100); });
  q.RunNext();
  EXPECT_EQ(q.Now(), 100);
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1, [&] {
    ++fired;
    q.Schedule(2, [&] { ++fired; });
  });
  while (q.RunNext()) {
  }
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.Schedule(50, [] {});
  q.RunNext();
  EXPECT_THROW(q.Schedule(49, [] {}), std::logic_error);
  q.Schedule(50, [] {});  // same-time is allowed
}

TEST(EventQueue, EmptyQueueReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.RunNext());
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, SizeTracksPending) {
  EventQueue q;
  q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.RunNext();
  EXPECT_EQ(q.Size(), 1u);
}

}  // namespace
}  // namespace arlo::sim
