// Unit tests for the fault subsystem's building blocks: FaultPlan DSL
// parsing and canonical serialization, retry backoff, and health tracking.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "fault/fault_plan.h"
#include "fault/health.h"
#include "fault/retry.h"

namespace arlo::fault {
namespace {

TEST(FaultPlan, ParsesEveryDirective) {
  const FaultPlan plan = FaultPlan::Parse(
      "# comment-only line\n"
      "seed 42\n"
      "drop p=0.01   # trailing comment\n"
      "mtbf 5\n"
      "crash t=5 instance=3\n"
      "hang t=8 instance=1 dur=2.5\n"
      "slow t=10 instance=2 dur=5 factor=2.5\n");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.dispatch_error_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.random_crash_mtbf_s, 5.0);
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[0].at, Seconds(5.0));
  EXPECT_EQ(plan.events[0].instance, 3u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kHang);
  EXPECT_EQ(plan.events[1].duration, Seconds(2.5));
  EXPECT_EQ(plan.events[2].kind, FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(plan.events[2].factor, 2.5);
  EXPECT_FALSE(plan.Empty());
}

TEST(FaultPlan, EmptyAndDefaults) {
  const FaultPlan plan = FaultPlan::Parse("\n  \n# nothing here\n");
  EXPECT_TRUE(plan.Empty());
  EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ToStringRoundTripsExactly) {
  FaultPlan plan;
  plan.seed = 7;
  plan.dispatch_error_prob = 0.005;
  plan.random_crash_mtbf_s = 12.5;
  plan.CrashAt(Seconds(5.0), 3)
      .HangAt(Seconds(1.25), 1, Millis(750.0))
      .SlowdownAt(Seconds(10.0), 2, Seconds(5.0), 2.5);
  const std::string text = plan.ToString();
  const FaultPlan reparsed = FaultPlan::Parse(text);
  EXPECT_EQ(reparsed.ToString(), text);
  EXPECT_EQ(reparsed.seed, plan.seed);
  EXPECT_DOUBLE_EQ(reparsed.dispatch_error_prob, plan.dispatch_error_prob);
  ASSERT_EQ(reparsed.events.size(), 3u);
  // ToString emits events sorted by time; the hang (t=1.25) comes first.
  EXPECT_EQ(reparsed.events[0].kind, FaultKind::kHang);
  EXPECT_EQ(reparsed.events[0].duration, Millis(750.0));
}

TEST(FaultPlan, SortedIsStableByTime) {
  FaultPlan plan;
  plan.CrashAt(Seconds(2.0), 5).CrashAt(Seconds(1.0), 9).CrashAt(Seconds(2.0),
                                                                 6);
  const auto sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].instance, 9u);
  EXPECT_EQ(sorted[1].instance, 5u);  // insertion order kept for equal times
  EXPECT_EQ(sorted[2].instance, 6u);
}

TEST(FaultPlan, ErrorsNameTheOffendingLine) {
  try {
    FaultPlan::Parse("seed 1\nbogus t=1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault plan line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
  EXPECT_THROW(FaultPlan::Parse("crash t=1"), std::invalid_argument);  // no
                                                                      // instance
  EXPECT_THROW(FaultPlan::Parse("crash t=abc instance=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("drop p=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("mtbf -1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("hang t=1 instance=0 dur=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("slow t=1 instance=0 dur=1 factor=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash t=1 instance=0 extra=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash t=1 bare-token instance=0"),
               std::invalid_argument);
}

TEST(RetryPolicy, BackoffGrowsAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff = Millis(2.0);
  policy.multiplier = 2.0;
  policy.max_backoff = Millis(10.0);
  policy.jitter = 0.0;  // deterministic nominal values
  Rng rng(1);
  EXPECT_EQ(policy.BackoffFor(0, rng), Millis(2.0));
  EXPECT_EQ(policy.BackoffFor(1, rng), Millis(4.0));
  EXPECT_EQ(policy.BackoffFor(2, rng), Millis(8.0));
  EXPECT_EQ(policy.BackoffFor(3, rng), Millis(10.0));  // clamped
  EXPECT_EQ(policy.BackoffFor(9, rng), Millis(10.0));
}

TEST(RetryPolicy, JitterStaysInBoundsAndIsSeeded) {
  RetryPolicy policy;
  policy.initial_backoff = Millis(10.0);
  policy.jitter = 0.2;
  Rng rng_a(123), rng_b(123), rng_c(456);
  for (int i = 0; i < 200; ++i) {
    const SimDuration a = policy.BackoffFor(0, rng_a);
    EXPECT_GE(a, Millis(8.0));
    EXPECT_LE(a, Millis(12.0));
    EXPECT_EQ(a, policy.BackoffFor(0, rng_b));  // same seed, same jitter
  }
  // A different stream diverges somewhere in 200 draws.
  bool diverged = false;
  Rng rng_a2(123);
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = policy.BackoffFor(0, rng_a2) != policy.BackoffFor(0, rng_c);
  }
  EXPECT_TRUE(diverged);
}

TEST(HealthTracker, FindsOnlyStalledInstancesWithWork) {
  HealthTracker tracker(Seconds(1.0));
  tracker.OnReady(0, Seconds(0.0));
  tracker.OnReady(1, Seconds(0.0));
  tracker.OnReady(2, Seconds(0.0));
  tracker.OnProgress(1, Seconds(2.0));  // instance 1 kept working
  const auto outstanding = [](InstanceId id) { return id == 2 ? 0 : 3; };
  // t=2.5: instance 0 stalled with work; 1 progressed; 2 stalled but idle.
  const auto hung = tracker.FindHung(Seconds(2.5), outstanding);
  ASSERT_EQ(hung.size(), 1u);
  EXPECT_EQ(hung[0], 0u);
  // Progress on an untracked (gone) instance is ignored, not resurrected.
  tracker.OnGone(0);
  tracker.OnProgress(0, Seconds(3.0));
  EXPECT_FALSE(tracker.Tracks(0));
  EXPECT_EQ(tracker.NumTracked(), 2u);
  // By t=4 instance 1's progress (t=2) is stale too; gone instance 0 stays
  // out of the report.
  const auto hung_later = tracker.FindHung(Seconds(4.0), outstanding);
  ASSERT_EQ(hung_later.size(), 1u);
  EXPECT_EQ(hung_later[0], 1u);
}

TEST(HealthTracker, DisabledWithZeroTimeout) {
  HealthTracker tracker(0);
  tracker.OnReady(0, 0);
  EXPECT_TRUE(
      tracker.FindHung(Seconds(100.0), [](InstanceId) { return 5; }).empty());
}

}  // namespace
}  // namespace arlo::fault
