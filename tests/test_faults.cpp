// Fault-injection tests: instances crash mid-run, their queued and
// in-flight work is re-dispatched, and schemes recover via re-allocation /
// auto-scaling (§3.4's motivation: failures cause imbalanced load).
#include <gtest/gtest.h>

#include "baselines/scenario.h"
#include "sim/engine.h"
#include "trace/twitter.h"

namespace arlo {
namespace {

trace::Trace SmallTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

sim::EngineConfig FaultyEngine(double mtbf_s, std::uint64_t seed = 7) {
  sim::EngineConfig engine;
  engine.mean_time_between_failures_s = mtbf_s;
  engine.fault_seed = seed;
  return engine;
}

TEST(FaultInjection, NoRequestIsLostWhenInstancesCrash) {
  const trace::Trace t = SmallTrace(200.0, 8.0, 1);
  baselines::ScenarioConfig config;
  config.gpus = 4;
  config.period = Seconds(2.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  const sim::EngineResult result =
      sim::RunScenario(t, *scheme, FaultyEngine(/*mtbf_s=*/2.0));
  EXPECT_GT(result.injected_failures, 0);
  ASSERT_EQ(result.records.size(), t.Size());
  std::vector<bool> seen(t.Size(), false);
  for (const auto& r : result.records) {
    EXPECT_FALSE(seen[r.id]);
    seen[r.id] = true;
  }
}

TEST(FaultInjection, AutoscalerRestoresLostCapacity) {
  const trace::Trace t = SmallTrace(400.0, 15.0, 2);
  baselines::ScenarioConfig config;
  config.gpus = 3;
  config.period = Seconds(3.0);
  config.autoscale = true;
  config.autoscaler.min_samples = 10;
  config.autoscaler.latency_window = Seconds(4.0);
  config.autoscaler.scale_out_cooldown = Seconds(1.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  const sim::EngineResult result =
      sim::RunScenario(t, *scheme, FaultyEngine(3.0));
  EXPECT_GT(result.injected_failures, 2);
  EXPECT_EQ(result.records.size(), t.Size());
  // Replacement capacity was provisioned (more launches than the initial 3).
  EXPECT_GT(result.peak_gpus, 3);
}

TEST(FaultInjection, BaselinesSurviveCrashesToo) {
  const trace::Trace t = SmallTrace(150.0, 6.0, 3);
  for (const char* name : {"st", "dt", "infaas"}) {
    baselines::ScenarioConfig config;
    config.gpus = 4;
    config.period = Seconds(2.0);
    auto scheme = baselines::MakeSchemeByName(name, config);
    const sim::EngineResult result =
        sim::RunScenario(t, *scheme, FaultyEngine(3.0, 11));
    EXPECT_EQ(result.records.size(), t.Size()) << name;
    EXPECT_GT(result.injected_failures, 0) << name;
  }
}

TEST(FaultInjection, DisabledByDefault) {
  const trace::Trace t = SmallTrace(100.0, 2.0, 4);
  baselines::ScenarioConfig config;
  config.gpus = 2;
  auto scheme = baselines::MakeSchemeByName("st", config);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  EXPECT_EQ(result.injected_failures, 0);
}

TEST(FaultInjection, DeterministicInFaultSeed) {
  auto run = [] {
    const trace::Trace t = SmallTrace(150.0, 5.0, 5);
    baselines::ScenarioConfig config;
    config.gpus = 3;
    auto scheme = baselines::MakeSchemeByName("dt", config);
    return sim::RunScenario(t, *scheme, FaultyEngine(2.0, 99));
  };
  const sim::EngineResult a = run();
  const sim::EngineResult b = run();
  EXPECT_EQ(a.injected_failures, b.injected_failures);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
  }
}

TEST(FaultInjection, LatencyAccountingSurvivesReDispatch) {
  const trace::Trace t = SmallTrace(200.0, 6.0, 6);
  baselines::ScenarioConfig config;
  config.gpus = 3;
  auto scheme = baselines::MakeSchemeByName("st", config);
  const sim::EngineResult result =
      sim::RunScenario(t, *scheme, FaultyEngine(1.5, 5));
  for (const auto& r : result.records) {
    EXPECT_GE(r.dispatch, r.arrival);   // re-dispatch keeps original arrival
    EXPECT_GT(r.completion, r.start);
  }
}

}  // namespace
}  // namespace arlo
