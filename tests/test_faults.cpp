// Fault-injection tests: instances crash mid-run, their queued and
// in-flight work is re-dispatched, and schemes recover via re-allocation /
// auto-scaling (§3.4's motivation: failures cause imbalanced load).
//
// The second half drives the declarative FaultPlan path (src/fault):
// scheduled crashes/hangs/slowdowns, transient-error retries, hang
// detection, deadline shedding, and byte-identical seeded telemetry traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "baselines/scenario.h"
#include "fault/fault_plan.h"
#include "sim/engine.h"
#include "telemetry/sink.h"
#include "trace/twitter.h"

namespace arlo {
namespace {

trace::Trace SmallTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

sim::EngineConfig FaultyEngine(double mtbf_s, std::uint64_t seed = 7) {
  sim::EngineConfig engine;
  engine.mean_time_between_failures_s = mtbf_s;
  engine.fault_seed = seed;
  return engine;
}

TEST(FaultInjection, NoRequestIsLostWhenInstancesCrash) {
  const trace::Trace t = SmallTrace(200.0, 8.0, 1);
  baselines::ScenarioConfig config;
  config.gpus = 4;
  config.period = Seconds(2.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  const sim::EngineResult result =
      sim::RunScenario(t, *scheme, FaultyEngine(/*mtbf_s=*/2.0));
  EXPECT_GT(result.injected_failures, 0);
  ASSERT_EQ(result.records.size(), t.Size());
  std::vector<bool> seen(t.Size(), false);
  for (const auto& r : result.records) {
    EXPECT_FALSE(seen[r.id]);
    seen[r.id] = true;
  }
}

TEST(FaultInjection, AutoscalerRestoresLostCapacity) {
  const trace::Trace t = SmallTrace(400.0, 15.0, 2);
  baselines::ScenarioConfig config;
  config.gpus = 3;
  config.period = Seconds(3.0);
  config.autoscale = true;
  config.autoscaler.min_samples = 10;
  config.autoscaler.latency_window = Seconds(4.0);
  config.autoscaler.scale_out_cooldown = Seconds(1.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  const sim::EngineResult result =
      sim::RunScenario(t, *scheme, FaultyEngine(3.0));
  EXPECT_GT(result.injected_failures, 2);
  EXPECT_EQ(result.records.size(), t.Size());
  // Replacement capacity was provisioned (more launches than the initial 3).
  EXPECT_GT(result.peak_gpus, 3);
}

TEST(FaultInjection, BaselinesSurviveCrashesToo) {
  const trace::Trace t = SmallTrace(150.0, 6.0, 3);
  for (const char* name : {"st", "dt", "infaas"}) {
    baselines::ScenarioConfig config;
    config.gpus = 4;
    config.period = Seconds(2.0);
    auto scheme = baselines::MakeSchemeByName(name, config);
    const sim::EngineResult result =
        sim::RunScenario(t, *scheme, FaultyEngine(3.0, 11));
    EXPECT_EQ(result.records.size(), t.Size()) << name;
    EXPECT_GT(result.injected_failures, 0) << name;
  }
}

TEST(FaultInjection, DisabledByDefault) {
  const trace::Trace t = SmallTrace(100.0, 2.0, 4);
  baselines::ScenarioConfig config;
  config.gpus = 2;
  auto scheme = baselines::MakeSchemeByName("st", config);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);
  EXPECT_EQ(result.injected_failures, 0);
}

TEST(FaultInjection, DeterministicInFaultSeed) {
  auto run = [] {
    const trace::Trace t = SmallTrace(150.0, 5.0, 5);
    baselines::ScenarioConfig config;
    config.gpus = 3;
    auto scheme = baselines::MakeSchemeByName("dt", config);
    return sim::RunScenario(t, *scheme, FaultyEngine(2.0, 99));
  };
  const sim::EngineResult a = run();
  const sim::EngineResult b = run();
  EXPECT_EQ(a.injected_failures, b.injected_failures);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
  }
}

TEST(FaultInjection, LatencyAccountingSurvivesReDispatch) {
  const trace::Trace t = SmallTrace(200.0, 6.0, 6);
  baselines::ScenarioConfig config;
  config.gpus = 3;
  auto scheme = baselines::MakeSchemeByName("st", config);
  const sim::EngineResult result =
      sim::RunScenario(t, *scheme, FaultyEngine(1.5, 5));
  for (const auto& r : result.records) {
    EXPECT_GE(r.dispatch, r.arrival);   // re-dispatch keeps original arrival
    EXPECT_GT(r.completion, r.start);
  }
}

// --- FaultPlan-driven injection ------------------------------------------

// Period defaults to longer than every run here: planned fault events
// target instance ids from the initial allocation, and periodic
// re-allocation would retire those ids mid-run (out-of-cycle re-allocation
// after a failure still runs — that is the degradation path under test).
baselines::ScenarioConfig ArloConfig(const trace::Trace& t, int gpus,
                                     SimDuration period = Seconds(30.0)) {
  baselines::ScenarioConfig config;
  config.gpus = gpus;
  config.period = period;
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  return config;
}

/// Every trace id appears exactly once across served + shed records.
void ExpectCompleteCoverage(const trace::Trace& t,
                            const sim::EngineResult& result) {
  ASSERT_EQ(result.records.size() + result.shed_records.size(), t.Size());
  std::vector<int> count(t.Size(), 0);
  for (const auto& r : result.records) ++count[r.id];
  for (const auto& r : result.shed_records) ++count[r.id];
  for (std::size_t id = 0; id < count.size(); ++id) {
    EXPECT_EQ(count[id], 1) << "request " << id;
  }
}

// The ISSUE acceptance scenario: a plan crashes 2 of 10 instances mid-run
// under load with transient errors and shedding enabled.  Nothing is lost
// or double-completed, and every new counter is nonzero and exported.
TEST(FaultPlanSim, CrashTwoOfTenNothingLost) {
  const trace::Trace t = SmallTrace(2000.0, 8.0, 21);
  baselines::ScenarioConfig config = ArloConfig(t, 10);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  // Instances launch in runtime order, so the highest ids host the
  // longest-sequence runtime; losing both (2 of 10) leaves long requests
  // with no serving instance until the replacements come up ~1 s later —
  // they buffer, and the ones that overstay the deadline shed.
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.dispatch_error_prob = 0.01;
  plan.CrashAt(Seconds(3.0), 8).CrashAt(Seconds(3.0), 9);

  telemetry::TelemetrySink sink;
  sim::EngineConfig engine;
  engine.fault_plan = &plan;
  engine.resilience.shed_deadline = Millis(300.0);
  engine.telemetry = &sink;

  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  ExpectCompleteCoverage(t, result);
  EXPECT_EQ(result.injected_failures, 2);
  EXPECT_GE(result.faults_injected, 2u);
  EXPECT_GT(result.retries, 0u);
  EXPECT_GT(result.requeues, 0u);
  EXPECT_GT(result.sheds, 0u);

  std::ostringstream prom;
  sink.WritePrometheus(prom);
  const std::string text = prom.str();
  for (const char* name :
       {"arlo_faults_injected_total", "arlo_retries_total",
        "arlo_requeues_total", "arlo_sheds_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// Two runs with the same plan + seed serialize byte-identical Chrome traces.
TEST(FaultPlanSim, SeededRunsProduceByteIdenticalTraces) {
  const auto run = [] {
    const trace::Trace t = SmallTrace(500.0, 6.0, 22);
    baselines::ScenarioConfig config;
    config.gpus = 6;
    config.period = Seconds(2.0);
    auto runtimes = baselines::MakeRuntimeSetFor(config);
    config.initial_demand =
        baselines::DemandFromTrace(t, *runtimes, config.slo);
    auto scheme = baselines::MakeSchemeByName("arlo", config);

    fault::FaultPlan plan;
    plan.seed = 9;
    plan.dispatch_error_prob = 0.02;
    plan.random_crash_mtbf_s = 3.0;
    plan.CrashAt(Seconds(2.0), 1)
        .HangAt(Seconds(2.5), 3, Millis(600.0))
        .SlowdownAt(Seconds(3.0), 4, Seconds(1.0), 3.0);

    telemetry::TelemetrySink sink;
    sim::EngineConfig engine;
    engine.fault_plan = &plan;
    engine.resilience.hang_timeout = Seconds(2.0);
    engine.resilience.shed_deadline = Millis(500.0);
    engine.telemetry = &sink;
    (void)sim::RunScenario(t, *scheme, engine);
    std::ostringstream trace_json;
    sink.WriteChromeTrace(trace_json);
    return trace_json.str();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a, b);
}

// A hang with detection disabled just freezes the instance for its window:
// everything still completes, nothing is reaped.
TEST(FaultPlanSim, HangFreezesAndRecovers) {
  const trace::Trace t = SmallTrace(300.0, 5.0, 23);
  baselines::ScenarioConfig config = ArloConfig(t, 4);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  fault::FaultPlan plan;
  plan.HangAt(Seconds(2.0), 0, Seconds(1.0));

  sim::EngineConfig engine;
  engine.fault_plan = &plan;
  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  EXPECT_EQ(result.records.size(), t.Size());
  EXPECT_EQ(result.injected_failures, 0);
  EXPECT_EQ(result.faults_injected, 1u);
  EXPECT_EQ(result.requeues, 0u);
}

// With hang detection on and a hang longer than the timeout, the frozen
// instance is reaped like a crash and its work requeued.
TEST(FaultPlanSim, HangDetectionReapsTheFrozenInstance) {
  const trace::Trace t = SmallTrace(400.0, 6.0, 24);
  baselines::ScenarioConfig config = ArloConfig(t, 4);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  fault::FaultPlan plan;
  plan.HangAt(Seconds(2.0), 0, Seconds(30.0));  // would outlast the run

  sim::EngineConfig engine;
  engine.fault_plan = &plan;
  engine.resilience.hang_timeout = Millis(500.0);
  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  EXPECT_EQ(result.records.size(), t.Size());
  EXPECT_EQ(result.injected_failures, 1);  // the reap
  EXPECT_GT(result.requeues, 0u);
}

// A slowdown stretches service times on the target instance while active.
TEST(FaultPlanSim, SlowdownStretchesServiceTimes) {
  const trace::Trace t = SmallTrace(300.0, 5.0, 25);
  const auto run = [&](double factor) {
    baselines::ScenarioConfig config = ArloConfig(t, 3);
    auto scheme = baselines::MakeSchemeByName("st", config);
    fault::FaultPlan plan;
    plan.SlowdownAt(Seconds(1.0), 0, Seconds(3.0), factor);
    sim::EngineConfig engine;
    engine.fault_plan = &plan;
    return sim::RunScenario(t, *scheme, engine);
  };
  const sim::EngineResult slow = run(8.0);
  const sim::EngineResult fast = run(1.0 + 1e-12);
  EXPECT_EQ(slow.records.size(), t.Size());
  // Same trace, same scheme: the heavy slowdown must strictly lengthen the
  // slowest request's service time somewhere on instance 0.
  const auto max_service = [](const sim::EngineResult& r) {
    SimDuration worst = 0;
    for (const auto& rec : r.records) {
      if (rec.instance == 0) worst = std::max(worst, rec.ServiceTime());
    }
    return worst;
  };
  EXPECT_GT(max_service(slow), max_service(fast));
}

// Transient errors delay dispatch but never drop: with p high and
// max_attempts small, everything still completes.
TEST(FaultPlanSim, TransientErrorsRetryButNeverLose) {
  const trace::Trace t = SmallTrace(200.0, 4.0, 26);
  baselines::ScenarioConfig config = ArloConfig(t, 3);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  fault::FaultPlan plan;
  plan.seed = 13;
  plan.dispatch_error_prob = 0.5;

  sim::EngineConfig engine;
  engine.fault_plan = &plan;
  engine.resilience.retry.max_attempts = 3;
  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  EXPECT_EQ(result.records.size(), t.Size());
  EXPECT_GT(result.retries, 100u);
  for (const auto& r : result.records) {
    EXPECT_GE(r.dispatch, r.arrival);
  }
}

// Shedding rejects only requests that overstayed the deadline, and a shed
// record carries the rejection time.
TEST(FaultPlanSim, ShedsOnlyExpiredRequests) {
  const trace::Trace t = SmallTrace(900.0, 6.0, 27);
  baselines::ScenarioConfig config = ArloConfig(t, 4);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  fault::FaultPlan plan;
  // Take out the top half of the cluster — including the sole hosts of the
  // longest-sequence runtime — so arrivals back up in the buffer.
  plan.CrashAt(Seconds(2.0), 2).CrashAt(Seconds(2.0), 3);

  sim::EngineConfig engine;
  engine.fault_plan = &plan;
  engine.resilience.shed_deadline = Millis(300.0);
  const sim::EngineResult result = sim::RunScenario(t, *scheme, engine);
  ExpectCompleteCoverage(t, result);
  EXPECT_GT(result.sheds, 0u);
  EXPECT_EQ(result.sheds, result.shed_records.size());
  for (const auto& r : result.shed_records) {
    EXPECT_GT(r.completion - r.arrival, Millis(300.0));
    EXPECT_EQ(r.dispatch, r.completion);  // never dispatched
  }
}

// An attached-but-empty resilience policy changes nothing: a plan with no
// faults reproduces the fault-free run exactly.
TEST(FaultPlanSim, EmptyPlanMatchesBaselineRun) {
  const trace::Trace t = SmallTrace(300.0, 4.0, 28);
  const auto run = [&](bool with_plan, const fault::FaultPlan* plan) {
    baselines::ScenarioConfig config = ArloConfig(t, 3);
    auto scheme = baselines::MakeSchemeByName("arlo", config);
    sim::EngineConfig engine;
    if (with_plan) engine.fault_plan = plan;
    return sim::RunScenario(t, *scheme, engine);
  };
  const fault::FaultPlan empty;
  const sim::EngineResult a = run(false, nullptr);
  const sim::EngineResult b = run(true, &empty);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
    EXPECT_EQ(a.records[i].instance, b.records[i].instance);
  }
}

}  // namespace
}  // namespace arlo
