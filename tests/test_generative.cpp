// Generative serving: the ContinuousBatcher state machine, the two-phase
// cost model, the KV capacity boundary, engine/testbed integration, and —
// first of all — that the feature's default-off path keeps seeded one-shot
// runs byte-identical to pre-generative builds (golden hashes below were
// generated at the parent commit).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/scenario.h"
#include "batch/continuous.h"
#include "batch/policy.h"
#include "runtime/compiled_runtime.h"
#include "serving/testbed.h"
#include "sim/engine.h"
#include "telemetry/sink.h"
#include "trace/generative.h"
#include "trace/twitter.h"

namespace arlo {
namespace {

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Golden: --generative off is byte-identical to the pre-generative build.
// The three hashes were produced at the parent commit by an identical
// generator (same trace, same schemes, same telemetry dump); if one of them
// moves, the generative PR changed the one-shot path, which it must not.

trace::Trace GoldenTrace() {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 5.0;
  tc.mean_rate = 400.0;
  tc.seed = 17;
  return trace::SynthesizeTwitterTrace(tc);
}

TEST(GenerativeGolden, OneShotTraceCsvIsByteIdenticalToPrePr) {
  std::ostringstream csv;
  GoldenTrace().SaveCsv(csv);
  EXPECT_EQ(Fnv1a(csv.str()), 2696290044842556078ull);
}

std::uint64_t OneShotRunHash(const trace::Trace& t, int max_batch,
                             const char* policy_name) {
  baselines::ScenarioConfig config;
  config.gpus = 6;
  config.period = Seconds(2.0);
  config.max_batch = max_batch;
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  auto policy = batch::MakeBatchPolicy(policy_name);
  telemetry::TelemetrySink sink;
  sim::EngineConfig engine;
  engine.max_batch = max_batch;
  engine.batch_policy = policy.get();
  engine.telemetry = &sink;
  (void)sim::RunScenario(t, *scheme, engine);
  std::ostringstream trace_json;
  sink.WriteChromeTrace(trace_json);
  return Fnv1a(trace_json.str());
}

TEST(GenerativeGolden, OneShotChromeTraceIsByteIdenticalToPrePr) {
  const trace::Trace t = GoldenTrace();
  EXPECT_EQ(OneShotRunHash(t, 1, "greedy"), 9725147058057450035ull);
  EXPECT_EQ(OneShotRunHash(t, 4, "slo"), 709274047207607683ull);
}

// ---------------------------------------------------------------------------
// CLI parse/validate golden messages (scripts and docs quote these).

TEST(GenerativeParse, GoldenErrorMessages) {
  try {
    batch::ParseGenAdmission("fifo");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown admission policy: fifo "
                 "(valid policies: decode, prefill)");
  }
  try {
    batch::ParseGenBatcherMode("orca");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown generative batcher: orca "
                 "(valid batchers: continuous, static)");
  }
  try {
    batch::ValidateKvCapacity(0);
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "--kv-capacity must be a positive integer in [1, 4096] "
                 "(got 0)");
  }
  try {
    trace::ParseDecodeLengthDist("zipf:3");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "bad --decode-len-dist 'zipf:3': unknown distribution 'zipf' "
                 "(expected short, long, mixed, const:N, uniform:LO:HI, "
                 "lognormal:MED:P98:MAX)");
  }
}

TEST(GenerativeParse, AcceptsTheDocumentedSpecs) {
  for (const char* spec :
       {"short", "long", "mixed", "const:64", "uniform:8:32",
        "lognormal:32:96:256"}) {
    EXPECT_NE(trace::ParseDecodeLengthDist(spec), nullptr) << spec;
  }
  EXPECT_EQ(batch::ParseGenAdmission("prefill"),
            batch::GenAdmission::kPrioritizePrefill);
  EXPECT_EQ(batch::ParseGenAdmission("decode"),
            batch::GenAdmission::kDecodeFirst);
  EXPECT_EQ(batch::ParseGenBatcherMode("continuous"),
            batch::GenBatcherMode::kContinuous);
  EXPECT_EQ(batch::ParseGenBatcherMode("static"),
            batch::GenBatcherMode::kStatic);
  EXPECT_EQ(batch::ValidateKvCapacity(4096), 4096);
  EXPECT_THROW(batch::ValidateKvCapacity(4097), std::invalid_argument);
  EXPECT_THROW(trace::ParseDecodeLengthDist("uniform:9:3"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ContinuousBatcher unit tests.

batch::Item MakeItem(RequestId id, int length, int decode_len) {
  batch::Item item;
  item.request.id = id;
  item.request.length = length;
  item.request.decode_len = decode_len;
  return item;
}

TEST(ContinuousBatcher, KvCapacityBoundsAdmissionExactly) {
  batch::GenerativeConfig config;
  config.kv_capacity = 2;
  config.preempt = false;
  batch::ContinuousBatcher b(config);
  b.Enqueue(MakeItem(0, 100, 4));
  b.Enqueue(MakeItem(1, 120, 4));
  b.Enqueue(MakeItem(2, 140, 4));

  // Prefill admits exactly the KV capacity, not the whole queue.
  auto plan = b.BeginIteration(0);
  ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kPrefill);
  EXPECT_EQ(plan.batch, 2);
  EXPECT_EQ(plan.max_len, 120);
  auto result = b.CompleteIteration(10);
  EXPECT_EQ(result.tokens, 2);              // prefill emits token #1 each
  ASSERT_EQ(result.first_tokens.size(), 2u);
  EXPECT_EQ(b.ResidentCount(), 2);
  EXPECT_EQ(b.WaitingCount(), 1);

  // At the cap with preemption off: request 2 is refused — every iteration
  // is a decode until a resident finishes and releases its KV slot.
  for (int step = 0; step < 3; ++step) {
    plan = b.BeginIteration(20 + step);
    ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kDecode) << step;
    EXPECT_EQ(plan.batch, 2) << step;
    EXPECT_LE(b.ResidentCount(), 2) << step;
    result = b.CompleteIteration(30 + step);
  }
  // decode_len 4 = prefill token + 3 decode steps: both just finished.
  ASSERT_EQ(result.finished.size(), 2u);
  EXPECT_EQ(b.ResidentCount(), 0);

  // The freed slots resume admission of the refused request.
  plan = b.BeginIteration(50);
  ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kPrefill);
  EXPECT_EQ(plan.batch, 1);
  EXPECT_EQ(plan.max_len, 140);
  (void)b.CompleteIteration(60);
  EXPECT_EQ(b.ResidentCount(), 1);
  EXPECT_EQ(b.WaitingCount(), 0);
  EXPECT_EQ(b.Preemptions(), 0u);
}

TEST(ContinuousBatcher, PreemptsYoungestAtMostOncePerSequence) {
  batch::GenerativeConfig config;
  config.kv_capacity = 1;
  config.preempt = true;
  batch::ContinuousBatcher b(config);
  b.Enqueue(MakeItem(0, 100, 50));
  (void)b.BeginIteration(0);
  (void)b.CompleteIteration(1);
  ASSERT_EQ(b.ResidentCount(), 1);

  // A fresh prompt evicts the resident (recompute-style)...
  b.Enqueue(MakeItem(1, 100, 50));
  auto plan = b.BeginIteration(2);
  ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kPrefill);
  EXPECT_EQ(plan.preempted, 1);
  (void)b.CompleteIteration(3);
  EXPECT_EQ(b.Preemptions(), 1u);
  EXPECT_EQ(b.WaitingCount(), 1);  // request 0 went back to the queue

  // ...and the evictee's re-admission evicts request 1 in turn...
  plan = b.BeginIteration(4);
  ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kPrefill);
  EXPECT_EQ(plan.preempted, 1);
  (void)b.CompleteIteration(5);
  EXPECT_EQ(b.Preemptions(), 2u);

  // ...but request 0 is now immune: with request 1 waiting, the planner
  // falls through to decode instead of thrashing forever.
  plan = b.BeginIteration(6);
  EXPECT_EQ(plan.kind, batch::IterationPlan::Kind::kDecode);
  EXPECT_EQ(b.Preemptions(), 2u);
  EXPECT_EQ(b.WaitingCount(), 1);
}

TEST(ContinuousBatcher, StaticModeBillsTheCohortShapeUntilDrain) {
  batch::GenerativeConfig config;
  config.mode = batch::GenBatcherMode::kStatic;
  config.kv_capacity = 4;
  batch::ContinuousBatcher b(config);
  b.Enqueue(MakeItem(0, 100, 2));
  b.Enqueue(MakeItem(1, 100, 5));
  b.Enqueue(MakeItem(2, 100, 2));

  auto plan = b.BeginIteration(0);
  ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kPrefill);
  EXPECT_EQ(plan.batch, 3);  // static admits up to kv_capacity, not 4-max
  (void)b.CompleteIteration(1);

  // First decode: all three, billed at 3.
  plan = b.BeginIteration(2);
  ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kDecode);
  EXPECT_EQ(plan.batch, 3);
  EXPECT_EQ(plan.billed_batch, 3);
  auto result = b.CompleteIteration(3);
  EXPECT_EQ(result.finished.size(), 2u);  // the decode_len-2 pair is done

  // The straggler decodes alone but still bills at the launch cohort of 3 —
  // and no new admission happens until it drains, even with queue pressure.
  b.Enqueue(MakeItem(3, 100, 2));
  for (int step = 0; step < 3; ++step) {
    plan = b.BeginIteration(4 + step);
    ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kDecode) << step;
    EXPECT_EQ(plan.batch, 1) << step;
    EXPECT_EQ(plan.billed_batch, 3) << step;
    result = b.CompleteIteration(5 + step);
  }
  ASSERT_EQ(result.finished.size(), 1u);

  // Drained: the next cohort launches with a fresh shape.
  plan = b.BeginIteration(10);
  ASSERT_EQ(plan.kind, batch::IterationPlan::Kind::kPrefill);
  EXPECT_EQ(plan.batch, 1);
  (void)b.CompleteIteration(11);
  plan = b.BeginIteration(12);
  EXPECT_EQ(plan.billed_batch, 1);
}

TEST(ContinuousBatcher, StealAllAbortsEverythingStealWaitingKeepsResidents) {
  batch::GenerativeConfig config;
  config.kv_capacity = 2;
  batch::ContinuousBatcher b(config);
  b.Enqueue(MakeItem(0, 100, 8));
  b.Enqueue(MakeItem(1, 100, 8));
  b.Enqueue(MakeItem(2, 100, 8));
  (void)b.BeginIteration(0);
  (void)b.CompleteIteration(1);

  auto waiting = b.StealWaiting();
  ASSERT_EQ(waiting.size(), 1u);
  EXPECT_EQ(waiting[0].request.id, 2u);
  EXPECT_EQ(b.ResidentCount(), 2);  // residents finish in place
  EXPECT_FALSE(b.Idle());

  auto all = b.StealAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(b.Idle());
}

// ---------------------------------------------------------------------------
// Two-phase cost model.

TEST(GenerativeCostModel, DecodeStepTimeIsSaneAndClamped) {
  const runtime::ModelSpec model = runtime::ModelSpec::BertBase();
  const runtime::CompiledRuntime rt(model, runtime::CompilationKind::kDynamic,
                                    model.native_max_length);
  const SimDuration one = rt.DecodeStepTime(1, 64);
  EXPECT_GT(one, 0);
  // A decode step reads one token's KV-augmented attention — far cheaper
  // than prefilling the same context.
  EXPECT_LT(one, rt.ComputeTime(64));
  // Monotone in the batch bucket and in context length.
  EXPECT_GT(rt.DecodeStepTime(8, 64), one);
  EXPECT_GT(rt.DecodeStepTime(1, 512), one);
  // Bucketized batch: 5..8 share the 8-bucket price.
  EXPECT_EQ(rt.DecodeStepTime(5, 64), rt.DecodeStepTime(8, 64));
  // Context is clamped at the model's native max (KV never exceeds it).
  EXPECT_EQ(rt.DecodeStepTime(1, 1 << 20),
            rt.DecodeStepTime(1, model.native_max_length));
}

TEST(GenerativeCostModel, KvSequenceCapacityMatchesTheMath) {
  const runtime::ModelSpec model = runtime::ModelSpec::BertBase();
  // fp16 K and V vectors per layer per token.
  EXPECT_DOUBLE_EQ(runtime::KvBytesPerToken(model),
                   2.0 * 2.0 * model.layers * model.hidden);
  const double budget = 16.0 * 1024.0 * 1024.0 * 1024.0;
  const int expect = static_cast<int>(
      budget / (runtime::KvBytesPerToken(model) * model.native_max_length));
  EXPECT_EQ(runtime::KvSequenceCapacity(model, 16.0, model.native_max_length),
            expect);
  // A budget below one sequence still yields capacity 1, never 0.
  EXPECT_EQ(runtime::KvSequenceCapacity(model, 1e-6, model.native_max_length),
            1);
}

// ---------------------------------------------------------------------------
// Engine integration: completeness, metric ordering, determinism.

trace::Trace GenTrace(double rate, double duration_s, std::uint64_t seed,
                      const char* dist) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = duration_s;
  tc.mean_rate = rate;
  tc.seed = seed;
  tc.decode_lengths = trace::ParseDecodeLengthDist(dist);
  return trace::SynthesizeTwitterTrace(tc);
}

sim::EngineResult RunGenScenario(const trace::Trace& t,
                                 const batch::GenerativeConfig& gen) {
  baselines::ScenarioConfig config;
  config.gpus = 3;
  config.period = Seconds(2.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);
  sim::EngineConfig engine;
  engine.generative = &gen;
  return sim::RunScenario(t, *scheme, engine);
}

TEST(GenerativeEngine, ServesEveryRequestWithOrderedTimestamps) {
  const trace::Trace t = GenTrace(150.0, 3.0, 11, "short");
  ASSERT_TRUE(t.IsGenerative());
  batch::GenerativeConfig gen;
  gen.kv_capacity = 4;
  const sim::EngineResult result = RunGenScenario(t, gen);

  ASSERT_EQ(result.records.size(), t.Size());
  for (const RequestRecord& r : result.records) {
    ASSERT_TRUE(r.IsGenerative()) << r.id;
    EXPECT_GE(r.start, r.arrival) << r.id;
    EXPECT_GT(r.first_token, r.start) << r.id;
    EXPECT_LE(r.first_token, r.completion) << r.id;
    EXPECT_GE(r.TimeToFirstToken(), 0) << r.id;
    if (r.decode_len >= 2) {
      EXPECT_GT(r.MeanInterTokenLatency(), 0) << r.id;
      EXPECT_LT(r.first_token, r.completion) << r.id;
    }
  }
  EXPECT_GT(result.gen_prefill_iterations, 0u);
  EXPECT_GT(result.gen_decode_iterations, 0u);
  // Every request's full decode target was generated (preempted sequences
  // recompute, so reprocessed tokens can only add on top).
  std::uint64_t want_tokens = 0;
  for (const Request& r : t.Requests()) {
    want_tokens += static_cast<std::uint64_t>(std::max(1, r.decode_len));
  }
  EXPECT_GE(result.gen_tokens, want_tokens);
}

TEST(GenerativeEngine, SeededRunsAreDeterministic) {
  const trace::Trace t = GenTrace(200.0, 2.0, 23, "mixed");
  for (const char* admission : {"prefill", "decode"}) {
    batch::GenerativeConfig gen;
    gen.admission = batch::ParseGenAdmission(admission);
    gen.kv_capacity = 3;
    const sim::EngineResult a = RunGenScenario(t, gen);
    const sim::EngineResult b = RunGenScenario(t, gen);
    ASSERT_EQ(a.records.size(), b.records.size()) << admission;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_EQ(a.records[i].id, b.records[i].id);
      EXPECT_EQ(a.records[i].first_token, b.records[i].first_token);
      EXPECT_EQ(a.records[i].completion, b.records[i].completion);
      EXPECT_EQ(a.records[i].decode_len, b.records[i].decode_len);
    }
    EXPECT_EQ(a.gen_preemptions, b.gen_preemptions) << admission;
    EXPECT_EQ(a.gen_tokens, b.gen_tokens) << admission;
  }
}

TEST(GenerativeEngine, DecodeLenSurvivesTheCsvRoundTrip) {
  const trace::Trace t = GenTrace(80.0, 1.0, 5, "const:17");
  std::ostringstream os;
  t.SaveCsv(os);
  std::istringstream is(os.str());
  const trace::Trace back = trace::Trace::LoadCsv(is);
  ASSERT_EQ(back.Size(), t.Size());
  for (std::size_t i = 0; i < t.Size(); ++i) {
    EXPECT_EQ(back.Requests()[i].decode_len, 17);
    EXPECT_EQ(back.Requests()[i].length, t.Requests()[i].length);
  }
}

// ---------------------------------------------------------------------------
// Testbed integration smoke: the threaded substrate serves a generative
// trace completely, under both admission policies.  Runs under TSan/ASan in
// check.sh (filter Generative*).

TEST(GenerativeTestbed, ServesCompleteGenerativeTrace) {
  const trace::Trace t = GenTrace(120.0, 1.0, 31, "short");
  for (const char* admission : {"prefill", "decode"}) {
    baselines::ScenarioConfig config;
    config.gpus = 2;
    auto scheme = baselines::MakeSchemeByName("st", config);
    batch::GenerativeConfig gen;
    gen.admission = batch::ParseGenAdmission(admission);
    gen.kv_capacity = 4;
    serving::TestbedConfig tb;
    tb.time_scale = 0.25;
    tb.generative = &gen;
    const serving::TestbedResult result = serving::RunTestbed(t, *scheme, tb);
    ASSERT_EQ(result.records.size(), t.Size()) << admission;
    for (const RequestRecord& r : result.records) {
      EXPECT_TRUE(r.IsGenerative());
      EXPECT_GT(r.first_token, 0) << r.id;
      EXPECT_LE(r.first_token, r.completion) << r.id;
    }
    EXPECT_GT(result.gen_prefill_iterations, 0u) << admission;
    EXPECT_GT(result.gen_decode_iterations, 0u) << admission;
  }
}

}  // namespace
}  // namespace arlo
