#include "common/histogram.h"

#include <gtest/gtest.h>

namespace arlo {
namespace {

TEST(Histogram, AddAndCount) {
  Histogram h(10);
  h.Add(3);
  h.Add(3);
  h.Add(7);
  EXPECT_EQ(h.Total(), 3u);
  EXPECT_EQ(h.CountAt(3), 2u);
  EXPECT_EQ(h.CountAt(7), 1u);
  EXPECT_EQ(h.CountAt(5), 0u);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(10);
  h.Add(0);
  h.Add(-5);
  h.Add(99);
  EXPECT_EQ(h.CountAt(1), 2u);
  EXPECT_EQ(h.CountAt(10), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(4);
  h.Add(2, 5);
  EXPECT_EQ(h.Total(), 5u);
  EXPECT_EQ(h.CountAt(2), 5u);
}

TEST(Histogram, CountInRange) {
  Histogram h(10);
  for (int v = 1; v <= 10; ++v) h.Add(v);
  EXPECT_EQ(h.CountInRange(3, 5), 3u);
  EXPECT_EQ(h.CountInRange(-2, 100), 10u);
  EXPECT_EQ(h.CountInRange(8, 3), 0u);
}

TEST(Histogram, QuantileMedianAndTail) {
  Histogram h(100);
  for (int i = 0; i < 98; ++i) h.Add(10);
  h.Add(90);
  h.Add(95);
  EXPECT_EQ(h.Quantile(0.5), 10);
  EXPECT_EQ(h.Quantile(0.98), 10);
  EXPECT_EQ(h.Quantile(0.99), 90);
  EXPECT_EQ(h.Quantile(1.0), 95);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(50);
  EXPECT_EQ(h.Quantile(0.5), 50);
}

TEST(Histogram, CdfAt) {
  Histogram h(4);
  h.Add(1);
  h.Add(2);
  h.Add(2);
  h.Add(4);
  EXPECT_DOUBLE_EQ(h.CdfAt(1), 0.25);
  EXPECT_DOUBLE_EQ(h.CdfAt(2), 0.75);
  EXPECT_DOUBLE_EQ(h.CdfAt(3), 0.75);
  EXPECT_DOUBLE_EQ(h.CdfAt(4), 1.0);
}

TEST(Histogram, MeanAndPmf) {
  Histogram h(3);
  h.Add(1);
  h.Add(3);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
  const auto pmf = h.Pmf();
  EXPECT_DOUBLE_EQ(pmf[0], 0.5);
  EXPECT_DOUBLE_EQ(pmf[1], 0.0);
  EXPECT_DOUBLE_EQ(pmf[2], 0.5);
}

TEST(Histogram, MergeAndClear) {
  Histogram a(5), b(5);
  a.Add(1);
  b.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.Total(), 2u);
  EXPECT_EQ(a.CountAt(5), 1u);
  a.Clear();
  EXPECT_EQ(a.Total(), 0u);
}

TEST(Histogram, MergeRequiresSameRange) {
  Histogram a(5), b(6);
  EXPECT_THROW(a.Merge(b), std::logic_error);
}

TEST(DecayingHistogram, DecayShrinksWeight) {
  DecayingHistogram d(10, 0.5);
  d.Add(4);
  d.Add(4);
  EXPECT_DOUBLE_EQ(d.TotalWeight(), 2.0);
  d.Decay();
  EXPECT_DOUBLE_EQ(d.TotalWeight(), 1.0);
  EXPECT_DOUBLE_EQ(d.WeightInRange(4, 4), 1.0);
}

TEST(DecayingHistogram, RecentObservationsDominate) {
  DecayingHistogram d(10, 0.5);
  d.Add(2);  // old signal
  d.Decay();
  d.Add(8);  // fresh signal
  EXPECT_GT(d.WeightInRange(8, 8), d.WeightInRange(2, 2));
}

TEST(DecayingHistogram, BinDemandSplitsProportionally) {
  DecayingHistogram d(100, 1.0);
  for (int i = 0; i < 30; ++i) d.Add(10);   // bin (0, 50]
  for (int i = 0; i < 10; ++i) d.Add(80);   // bin (50, 100]
  const auto demand = d.BinDemand({50, 100}, 200.0);
  EXPECT_DOUBLE_EQ(demand[0], 150.0);
  EXPECT_DOUBLE_EQ(demand[1], 50.0);
}

TEST(DecayingHistogram, BinDemandEmptyFallsToLargestBin) {
  DecayingHistogram d(100, 0.9);
  const auto demand = d.BinDemand({50, 100}, 40.0);
  EXPECT_DOUBLE_EQ(demand[0], 0.0);
  EXPECT_DOUBLE_EQ(demand[1], 40.0);
}

TEST(DecayingHistogram, WeightedAdd) {
  DecayingHistogram d(10, 0.9);
  d.Add(3, 7.0);
  EXPECT_DOUBLE_EQ(d.TotalWeight(), 7.0);
}

}  // namespace
}  // namespace arlo
