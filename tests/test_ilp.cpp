#include "solver/ilp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace arlo::solver {
namespace {

TEST(SolveIlp, SimpleKnapsack) {
  // max 5a + 4b + 3c  s.t. 2a + 3b + c <= 5, binary → min form.
  // Optimum: a=1, c=1 (value 8, weight 3) … check: a+b: 2+3=5 value 9!
  // a=1,b=1 weight 5 value 9 → optimum 9.
  IlpProblem p;
  p.lp.objective = {-5.0, -4.0, -3.0};
  p.lp.AddConstraint({2.0, 3.0, 1.0}, Relation::kLessEq, 5.0);
  for (int i = 0; i < 3; ++i) {
    std::vector<double> row(3, 0.0);
    row[static_cast<std::size_t>(i)] = 1.0;
    p.lp.AddConstraint(std::move(row), Relation::kLessEq, 1.0);
  }
  p.integer = {true, true, true};
  const IlpSolution s = SolveIlp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -9.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.x[0], 1.0);
  EXPECT_DOUBLE_EQ(s.x[1], 1.0);
  EXPECT_DOUBLE_EQ(s.x[2], 0.0);
}

TEST(SolveIlp, IntegralityMakesItWorseThanLp) {
  // min -x  s.t. 2x <= 3: LP gives 1.5, ILP gives 1.
  IlpProblem p;
  p.lp.objective = {-1.0};
  p.lp.AddConstraint({2.0}, Relation::kLessEq, 3.0);
  p.integer = {true};
  const IlpSolution s = SolveIlp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.x[0], 1.0);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(SolveIlp, MixedIntegerKeepsContinuousFree) {
  // min -x - y  s.t. x + y <= 2.5, x integer, y continuous.
  IlpProblem p;
  p.lp.objective = {-1.0, -1.0};
  p.lp.AddConstraint({1.0, 1.0}, Relation::kLessEq, 2.5);
  p.lp.AddConstraint({1.0, 0.0}, Relation::kLessEq, 2.0);
  p.lp.AddConstraint({0.0, 1.0}, Relation::kLessEq, 2.0);
  p.integer = {true, false};
  const IlpSolution s = SolveIlp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.5, 1e-6);
  EXPECT_DOUBLE_EQ(s.x[0], std::round(s.x[0]));  // integral
}

TEST(SolveIlp, Infeasible) {
  IlpProblem p;
  p.lp.objective = {1.0};
  p.lp.AddConstraint({2.0}, Relation::kEqual, 1.0);  // x = 0.5, integer
  p.integer = {true};
  EXPECT_EQ(SolveIlp(p).status, IlpStatus::kInfeasible);
}

TEST(SolveIlp, Unbounded) {
  IlpProblem p;
  p.lp.objective = {-1.0};
  p.lp.AddConstraint({1.0}, Relation::kGreaterEq, 0.0);
  p.integer = {true};
  EXPECT_EQ(SolveIlp(p).status, IlpStatus::kUnbounded);
}

TEST(SolveIlp, AssignmentProblem) {
  // 2x2 assignment: costs [[1, 9], [8, 2]]; optimum = diagonal = 3.
  IlpProblem p;
  p.lp.objective = {1.0, 9.0, 8.0, 2.0};  // x00 x01 x10 x11
  p.lp.AddConstraint({1.0, 1.0, 0.0, 0.0}, Relation::kEqual, 1.0);
  p.lp.AddConstraint({0.0, 0.0, 1.0, 1.0}, Relation::kEqual, 1.0);
  p.lp.AddConstraint({1.0, 0.0, 1.0, 0.0}, Relation::kEqual, 1.0);
  p.lp.AddConstraint({0.0, 1.0, 0.0, 1.0}, Relation::kEqual, 1.0);
  p.integer = {true, true, true, true};
  const IlpSolution s = SolveIlp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.x[0], 1.0);
  EXPECT_DOUBLE_EQ(s.x[3], 1.0);
}

TEST(SolveIlp, NodeLimitReported) {
  // A 12-item knapsack with a tiny node budget cannot prove optimality.
  IlpProblem p;
  Rng rng(1);
  const int n = 12;
  p.lp.objective.resize(n);
  std::vector<double> weights(n);
  for (int i = 0; i < n; ++i) {
    p.lp.objective[static_cast<std::size_t>(i)] = -rng.Uniform(1.0, 10.0);
    weights[static_cast<std::size_t>(i)] = rng.Uniform(1.0, 10.0);
    std::vector<double> row(n, 0.0);
    row[static_cast<std::size_t>(i)] = 1.0;
    p.lp.AddConstraint(std::move(row), Relation::kLessEq, 1.0);
  }
  p.lp.AddConstraint(weights, Relation::kLessEq, 20.0);
  p.integer.assign(n, true);
  IlpOptions options;
  options.max_nodes = 2;
  const IlpSolution s = SolveIlp(p, options);
  EXPECT_TRUE(s.status == IlpStatus::kNodeLimit ||
              s.status == IlpStatus::kOptimal);
}

// Property sweep: random knapsacks, B&B must match exhaustive enumeration.
class KnapsackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackPropertyTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 10;
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.Uniform(1.0, 20.0);
    weight[static_cast<std::size_t>(i)] = rng.Uniform(1.0, 10.0);
  }
  const double cap = rng.Uniform(10.0, 30.0);

  // Brute force over all 2^n subsets.
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0.0, w = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    }
    if (w <= cap) best = std::max(best, v);
  }

  IlpProblem p;
  p.lp.objective.resize(n);
  for (int i = 0; i < n; ++i) {
    p.lp.objective[static_cast<std::size_t>(i)] =
        -value[static_cast<std::size_t>(i)];
    std::vector<double> row(n, 0.0);
    row[static_cast<std::size_t>(i)] = 1.0;
    p.lp.AddConstraint(std::move(row), Relation::kLessEq, 1.0);
  }
  p.lp.AddConstraint(weight, Relation::kLessEq, cap);
  p.integer.assign(n, true);
  const IlpSolution s = SolveIlp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(-s.objective, best, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace arlo::solver
