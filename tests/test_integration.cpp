// End-to-end integration: the paper's headline orderings must hold on
// reduced-scale versions of its scenarios.
#include <gtest/gtest.h>

#include <map>

#include "baselines/scenario.h"
#include "sim/engine.h"
#include "trace/twitter.h"

namespace arlo {
namespace {

using baselines::DemandFromTrace;
using baselines::MakeRuntimeSetFor;
using baselines::MakeSchemeByName;
using baselines::ScenarioConfig;

struct RunResult {
  LatencySummary latency;
  sim::EngineResult raw;
};

std::map<std::string, RunResult> RunAll(const trace::Trace& t,
                                        ScenarioConfig config) {
  auto runtimes = MakeRuntimeSetFor(config);
  config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);
  std::map<std::string, RunResult> out;
  for (const auto& name : baselines::AllSchemeNames()) {
    auto scheme = MakeSchemeByName(name, config);
    sim::EngineResult result = sim::RunScenario(t, *scheme);
    RunResult r;
    r.latency = Summarize(result.records, config.slo);
    r.raw = std::move(result);
    out.emplace(name, std::move(r));
  }
  return out;
}

// §5.1.1 (Fig. 6) at the paper's operating point (time-shortened): mean
// latency ordering arlo < dt < st, and arlo <= infaas.
TEST(Integration, HeadlineLatencyOrderingBertBaseStable) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 15.0;
  tc.mean_rate = 1000.0;  // Fig. 6a: 1k req/s on 10 GPUs
  tc.seed = 11;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  ScenarioConfig config;
  config.gpus = 10;
  config.slo = Millis(150.0);
  config.period = Seconds(5.0);
  const auto results = RunAll(t, config);

  const double arlo = results.at("arlo").latency.mean_ms;
  const double dt = results.at("dt").latency.mean_ms;
  const double st = results.at("st").latency.mean_ms;
  const double infaas = results.at("infaas").latency.mean_ms;

  EXPECT_LT(arlo, dt) << "arlo=" << arlo << " dt=" << dt;
  EXPECT_LT(dt, st) << "dt=" << dt << " st=" << st;
  EXPECT_LT(arlo, infaas * 1.02) << "arlo=" << arlo << " infaas=" << infaas;
  // §5.1.1: Arlo reduces mean latency by ~70% vs ST on the authors' testbed;
  // with our 0.8 ms fixed per-request overhead included on both sides, a
  // >=45% reduction must still show at this reduced scale.
  EXPECT_LT(arlo, st * 0.55);
}

TEST(Integration, TailLatencyAlsoImproves) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 20.0;
  tc.mean_rate = 400.0;
  tc.seed = 12;
  tc.pattern = trace::TwitterTraceConfig::Pattern::kBursty;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  ScenarioConfig config;
  config.gpus = 4;
  config.period = Seconds(5.0);
  const auto results = RunAll(t, config);
  EXPECT_LT(results.at("arlo").latency.p98_ms,
            results.at("st").latency.p98_ms);
}

// §5.2.3 Table 4 at reduced scale: RS beats ILB and IG on tail latency
// under *saturating* bursty traffic — the regime Table 4 evaluates, where
// IG's greedy seizing of larger-max_length instances overloads them and
// ILB's ideal-only placement cannot absorb bursts.
TEST(Integration, RequestSchedulerBeatsIlbAndIgOnTail) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 30.0;
  tc.mean_rate = 1000.0;  // ~75% of the 4-GPU cluster's ideal capacity
  tc.seed = 13;
  tc.pattern = trace::TwitterTraceConfig::Pattern::kBursty;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  ScenarioConfig config;
  config.gpus = 4;
  config.period = Seconds(5.0);
  auto runtimes = MakeRuntimeSetFor(config);
  config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);

  std::map<std::string, double> p98;
  for (const char* name : {"arlo", "arlo-ilb", "arlo-ig"}) {
    auto scheme = MakeSchemeByName(name, config);
    const sim::EngineResult result = sim::RunScenario(t, *scheme);
    p98[name] = Summarize(result.records, config.slo).p98_ms;
  }
  EXPECT_LE(p98["arlo"], p98["arlo-ilb"] * 1.10)
      << "arlo=" << p98["arlo"] << " ilb=" << p98["arlo-ilb"];
  EXPECT_LE(p98["arlo"], p98["arlo-ig"] * 1.10)
      << "arlo=" << p98["arlo"] << " ig=" << p98["arlo-ig"];
}

// §5.1.3 (Fig. 8) at reduced scale: with autoscaling on a bursty trace,
// Arlo consumes fewer time-weighted GPUs than ST.
TEST(Integration, AutoscalingConsumesFewerGpusThanSt) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 40.0;
  tc.mean_rate = 300.0;
  tc.seed = 14;
  tc.pattern = trace::TwitterTraceConfig::Pattern::kBursty;
  tc.rate_track = trace::MakeSpikyTrack(300.0, 40.0, 2.0, 6.0, 15.0, 14);
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  ScenarioConfig config;
  config.gpus = 2;
  config.period = Seconds(5.0);
  config.autoscale = true;
  config.autoscaler.min_samples = 20;
  config.autoscaler.latency_window = Seconds(5.0);
  config.autoscaler.scale_out_cooldown = Seconds(3.0);
  config.autoscaler.scale_in_interval = Seconds(10.0);

  auto runtimes = MakeRuntimeSetFor(config);
  config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);

  auto arlo = MakeSchemeByName("arlo", config);
  const sim::EngineResult arlo_result = sim::RunScenario(t, *arlo);
  auto st = MakeSchemeByName("st", config);
  const sim::EngineResult st_result = sim::RunScenario(t, *st);

  EXPECT_EQ(arlo_result.records.size(), t.Size());
  EXPECT_EQ(st_result.records.size(), t.Size());
  EXPECT_LT(arlo_result.time_weighted_gpus, st_result.time_weighted_gpus);
}

// Determinism across the whole stack: same seed, same results.
TEST(Integration, FullStackDeterminism) {
  auto run = [] {
    trace::TwitterTraceConfig tc;
    tc.duration_s = 10.0;
    tc.mean_rate = 200.0;
    tc.seed = 15;
    const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
    ScenarioConfig config;
    config.gpus = 3;
    config.period = Seconds(3.0);
    auto runtimes = MakeRuntimeSetFor(config);
    config.initial_demand = DemandFromTrace(t, *runtimes, config.slo);
    auto scheme = MakeSchemeByName("arlo", config);
    return sim::RunScenario(t, *scheme);
  };
  const sim::EngineResult a = run();
  const sim::EngineResult b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
    EXPECT_EQ(a.records[i].runtime, b.records[i].runtime);
  }
}

}  // namespace
}  // namespace arlo
