#include "trace/length_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

namespace arlo::trace {
namespace {

TEST(LognormalLength, FromQuantilesHitsTargets) {
  // Continuous targets: median 30, p95 90.
  const auto dist = LognormalLength::FromQuantiles(30.0, 90.0, 0.95, 1000);
  EXPECT_NEAR(std::exp(dist.mu()), 30.0, 1e-9);
  // sigma satisfies exp(mu + z95*sigma) = 90.
  EXPECT_NEAR(std::exp(dist.mu() + 1.6448536 * dist.sigma()), 90.0, 0.05);
}

TEST(LognormalLength, SamplesWithinBounds) {
  const LognormalLength dist(3.0, 0.6, 100);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const int s = dist.Sample(rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 100);
  }
}

TEST(LognormalLength, SampledMedianMatches) {
  const auto dist = LognormalLength::FromQuantiles(21.0, 72.0, 0.98, 125);
  Rng rng(2);
  Histogram h = dist.SampleHistogram(rng, 100000);
  EXPECT_NEAR(h.Quantile(0.5), 21, 1);
}

TEST(MixtureLength, RespectsWeights) {
  auto low = std::make_shared<LognormalLength>(std::log(5.0), 0.01, 100);
  auto high = std::make_shared<LognormalLength>(std::log(50.0), 0.01, 100);
  MixtureLength mix({{0.8, low}, {0.2, high}});
  Rng rng(3);
  int low_count = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (mix.Sample(rng) < 20) ++low_count;
  }
  EXPECT_NEAR(static_cast<double>(low_count) / kN, 0.8, 0.02);
}

TEST(MixtureLength, SetWeightsRenormalizes) {
  auto low = std::make_shared<LognormalLength>(std::log(5.0), 0.01, 100);
  auto high = std::make_shared<LognormalLength>(std::log(50.0), 0.01, 100);
  MixtureLength mix({{0.5, low}, {0.5, high}});
  mix.SetWeights({3.0, 1.0});  // => 0.75 / 0.25
  Rng rng(4);
  int low_count = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (mix.Sample(rng) < 20) ++low_count;
  }
  EXPECT_NEAR(static_cast<double>(low_count) / kN, 0.75, 0.02);
}

TEST(MixtureLength, RejectsBadWeights) {
  auto d = std::make_shared<LognormalLength>(1.0, 0.5, 10);
  MixtureLength mix({{1.0, d}});
  EXPECT_THROW(mix.SetWeights({-1.0}), std::logic_error);
  EXPECT_THROW(mix.SetWeights({0.0}), std::logic_error);
  EXPECT_THROW(mix.SetWeights({1.0, 2.0}), std::logic_error);
}

TEST(EmpiricalLength, MatchesPmf) {
  // Lengths 1..4 with masses 1, 0, 2, 1.
  EmpiricalLength dist({1.0, 0.0, 2.0, 1.0});
  Rng rng(5);
  Histogram h = dist.SampleHistogram(rng, 40000);
  EXPECT_NEAR(h.CdfAt(1), 0.25, 0.01);
  EXPECT_EQ(h.CountAt(2), 0u);
  EXPECT_NEAR(h.CdfAt(3), 0.75, 0.01);
  EXPECT_NEAR(h.CdfAt(4), 1.0, 1e-12);
}

TEST(EmpiricalLength, FromHistogramRoundTrip) {
  Histogram h(5);
  h.Add(2, 10);
  h.Add(5, 30);
  const auto dist = EmpiricalLength::FromHistogram(h);
  Rng rng(6);
  Histogram sampled = dist.SampleHistogram(rng, 20000);
  EXPECT_NEAR(sampled.CdfAt(2), 0.25, 0.02);
}

TEST(RescaledLength, ScalesAndClamps) {
  auto base = std::make_shared<LognormalLength>(std::log(100.0), 0.01, 125);
  RescaledLength scaled(base, 512.0 / 125.0, 512);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int s = scaled.Sample(rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 512);
    // base ~100 => scaled ~410.
    EXPECT_NEAR(s, 410, 40);
  }
}

// §2.1 calibration: the Twitter model must reproduce the published trace
// statistics — median 21 tokens, 98th percentile 72, max <= 125.
TEST(TwitterLengthModel, ReproducesPublishedQuantiles) {
  auto model = MakeTwitterLengthModel();
  Rng rng(8);
  Histogram h = model->SampleHistogram(rng, 300000);
  EXPECT_NEAR(h.Quantile(0.5), 21, 1);
  EXPECT_NEAR(h.Quantile(0.98), 72, 4);
  EXPECT_LE(h.Quantile(1.0), 125);
}

TEST(TwitterLengthModel, WeightParameterShiftsTail) {
  Rng rng(9);
  auto light = MakeTwitterLengthModel(0.1);
  auto heavy = MakeTwitterLengthModel(0.5);
  Histogram hl = light->SampleHistogram(rng, 50000);
  Histogram hh = heavy->SampleHistogram(rng, 50000);
  // Both calibrated to the same median/p98 but different shapes; the
  // heavier-long-weight model has more mass in the mid-range.
  EXPECT_NEAR(hl.Quantile(0.5), 21, 2);
  EXPECT_NEAR(hh.Quantile(0.5), 21, 2);
}

TEST(Twitter512LengthModel, SpansTo512) {
  auto model = MakeTwitter512LengthModel();
  EXPECT_EQ(model->MaxLength(), 512);
  Rng rng(10);
  Histogram h = model->SampleHistogram(rng, 200000);
  // Median scales with 512/125 ≈ 4.1: 21 * 4.096 ≈ 86.
  EXPECT_NEAR(h.Quantile(0.5), 86, 4);
  EXPECT_NEAR(h.Quantile(0.98), 295, 16);
  // Some demand must reach the largest bins (the 512-runtime matters).
  EXPECT_GT(h.CountInRange(449, 512), 0u);
}

}  // namespace
}  // namespace arlo::trace
