#include "solver/lp.h"

#include <gtest/gtest.h>

namespace arlo::solver {
namespace {

TEST(SolveLp, SimpleTwoVariableOptimum) {
  // min -x - 2y  s.t.  x + y <= 4,  x <= 2,  y <= 3,  x,y >= 0.
  // Optimum at (1, 3): objective -7.
  LpProblem p;
  p.objective = {-1.0, -2.0};
  p.AddConstraint({1.0, 1.0}, Relation::kLessEq, 4.0);
  p.AddConstraint({1.0, 0.0}, Relation::kLessEq, 2.0);
  p.AddConstraint({0.0, 1.0}, Relation::kLessEq, 3.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -7.0, 1e-9);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
}

TEST(SolveLp, EqualityConstraint) {
  // min x + y  s.t.  x + y = 5,  x >= 0, y >= 0 → objective 5.
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.AddConstraint({1.0, 1.0}, Relation::kEqual, 5.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 5.0, 1e-9);
}

TEST(SolveLp, GreaterEqualConstraint) {
  // min 3x + 2y  s.t.  x + y >= 4,  x >= 1 → optimum (1, 3): 9.
  LpProblem p;
  p.objective = {3.0, 2.0};
  p.AddConstraint({1.0, 1.0}, Relation::kGreaterEq, 4.0);
  p.AddConstraint({1.0, 0.0}, Relation::kGreaterEq, 1.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
}

TEST(SolveLp, DetectsInfeasible) {
  LpProblem p;
  p.objective = {1.0};
  p.AddConstraint({1.0}, Relation::kLessEq, 1.0);
  p.AddConstraint({1.0}, Relation::kGreaterEq, 2.0);
  EXPECT_EQ(SolveLp(p).status, LpStatus::kInfeasible);
}

TEST(SolveLp, DetectsUnbounded) {
  // min -x  s.t.  x >= 1 → unbounded below.
  LpProblem p;
  p.objective = {-1.0};
  p.AddConstraint({1.0}, Relation::kGreaterEq, 1.0);
  EXPECT_EQ(SolveLp(p).status, LpStatus::kUnbounded);
}

TEST(SolveLp, NegativeRhsNormalization) {
  // min x  s.t.  -x <= -3  (i.e. x >= 3) → optimum 3.
  LpProblem p;
  p.objective = {1.0};
  p.AddConstraint({-1.0}, Relation::kLessEq, -3.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(SolveLp, UnconstrainedProblem) {
  LpProblem p;
  p.objective = {2.0, 3.0};
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-12);

  LpProblem q;
  q.objective = {-1.0};
  EXPECT_EQ(SolveLp(q).status, LpStatus::kUnbounded);
}

TEST(SolveLp, DegenerateConstraintsTerminate) {
  // Redundant constraints exercise Bland's anti-cycling rule.
  LpProblem p;
  p.objective = {-1.0, -1.0};
  p.AddConstraint({1.0, 1.0}, Relation::kLessEq, 2.0);
  p.AddConstraint({1.0, 1.0}, Relation::kLessEq, 2.0);
  p.AddConstraint({2.0, 2.0}, Relation::kLessEq, 4.0);
  p.AddConstraint({1.0, 0.0}, Relation::kLessEq, 2.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(SolveLp, RedundantEqualitySystem) {
  // x + y = 2 stated twice: phase 1 leaves a redundant artificial basic.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.AddConstraint({1.0, 1.0}, Relation::kEqual, 2.0);
  p.AddConstraint({2.0, 2.0}, Relation::kEqual, 4.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);  // x=2, y=0
}

TEST(SolveLp, SolutionSatisfiesConstraints) {
  LpProblem p;
  p.objective = {1.0, -2.0, 3.0};
  p.AddConstraint({1.0, 1.0, 1.0}, Relation::kLessEq, 10.0);
  p.AddConstraint({1.0, -1.0, 0.0}, Relation::kGreaterEq, -2.0);
  p.AddConstraint({0.0, 1.0, 2.0}, Relation::kEqual, 6.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  ASSERT_EQ(s.x.size(), 3u);
  EXPECT_LE(s.x[0] + s.x[1] + s.x[2], 10.0 + 1e-9);
  EXPECT_GE(s.x[0] - s.x[1], -2.0 - 1e-9);
  EXPECT_NEAR(s.x[1] + 2.0 * s.x[2], 6.0, 1e-9);
  for (double v : s.x) EXPECT_GE(v, -1e-9);
}

// Property sweep: diet-style LPs with known optimal structure.
class LpScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(LpScaleTest, CoversBoxOptimum) {
  // min sum(-i * x_i) s.t. x_i <= 1, sum x_i <= n/2 → pick the n/2 largest
  // coefficients.
  const int n = GetParam();
  LpProblem p;
  p.objective.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    p.objective[static_cast<std::size_t>(i)] = -(i + 1.0);
    std::vector<double> row(static_cast<std::size_t>(n), 0.0);
    row[static_cast<std::size_t>(i)] = 1.0;
    p.AddConstraint(std::move(row), Relation::kLessEq, 1.0);
  }
  p.AddConstraint(std::vector<double>(static_cast<std::size_t>(n), 1.0),
                  Relation::kLessEq, n / 2.0);
  const LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  double expected = 0.0;
  for (int i = n - n / 2; i < n; ++i) expected -= (i + 1.0);
  EXPECT_NEAR(s.objective, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LpScaleTest,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace arlo::solver
