// Randomized differential test of MultiLevelQueue against a naive reference
// model: after every operation, heads, best-fits, counts, and per-instance
// loads must match a straightforward O(n)-scan implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/multi_level_queue.h"

namespace arlo::core {
namespace {

/// Naive reference: flat map scanned on every query.
class ReferenceModel {
 public:
  struct Inst {
    RuntimeId runtime;
    int outstanding;
    int capacity;
  };

  void Add(InstanceId id, RuntimeId rt, int cap, int out) {
    instances_[id] = {rt, out, cap};
  }
  void Remove(InstanceId id) { instances_.erase(id); }
  void Dispatch(InstanceId id) { ++instances_[id].outstanding; }
  void Complete(InstanceId id) {
    auto it = instances_.find(id);
    if (it != instances_.end()) --it->second.outstanding;
  }
  bool Contains(InstanceId id) const { return instances_.count(id) > 0; }

  std::optional<InstanceId> Head(RuntimeId level) const {
    std::optional<InstanceId> best;
    int best_load = 0;
    for (const auto& [id, inst] : instances_) {
      if (inst.runtime != level) continue;
      if (!best || inst.outstanding < best_load ||
          (inst.outstanding == best_load && id < *best)) {
        best = id;
        best_load = inst.outstanding;
      }
    }
    return best;
  }

  std::optional<InstanceId> BestFitBelow(RuntimeId level, int limit) const {
    std::optional<InstanceId> best;
    int best_load = -1;
    for (const auto& [id, inst] : instances_) {
      if (inst.runtime != level) continue;
      if (inst.outstanding >= limit || inst.outstanding >= inst.capacity) {
        continue;
      }
      // Ties: the set iterates ascending (outstanding, id) and BestFitBelow
      // scans backward, so among equals the *largest id* wins.
      if (inst.outstanding > best_load ||
          (inst.outstanding == best_load && id > *best)) {
        best = id;
        best_load = inst.outstanding;
      }
    }
    return best;
  }

  std::size_t Count(RuntimeId level) const {
    std::size_t n = 0;
    for (const auto& [id, inst] : instances_) {
      if (inst.runtime == level) ++n;
    }
    return n;
  }

  const std::map<InstanceId, Inst>& All() const { return instances_; }

 private:
  std::map<InstanceId, Inst> instances_;
};

class MlqFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MlqFuzzTest, MatchesReferenceModelUnderRandomOps) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL);
  constexpr std::size_t kLevels = 5;
  MultiLevelQueue queue(kLevels);
  ReferenceModel ref;
  InstanceId next_id = 0;
  std::vector<InstanceId> live;

  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op <= 2 || live.empty()) {  // add
      const auto level = static_cast<RuntimeId>(rng.UniformInt(0, 4));
      const int cap = static_cast<int>(rng.UniformInt(1, 8));
      const int out = static_cast<int>(rng.UniformInt(0, 5));
      queue.AddInstance(next_id, level, cap, out);
      ref.Add(next_id, level, cap, out);
      live.push_back(next_id++);
    } else if (op == 3 && !live.empty()) {  // remove
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      queue.RemoveInstance(live[idx]);
      ref.Remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op <= 6) {  // dispatch
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      queue.OnDispatch(live[idx]);
      ref.Dispatch(live[idx]);
    } else {  // complete (only when it would not underflow)
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      if (queue.Get(live[idx]).outstanding > 0) {
        queue.OnComplete(live[idx]);
        ref.Complete(live[idx]);
      }
    }

    // Full cross-check every 50 steps (and lightweight head checks always).
    for (RuntimeId level = 0; level < kLevels; ++level) {
      const auto head = queue.Head(level);
      const auto ref_head = ref.Head(level);
      ASSERT_EQ(head.has_value(), ref_head.has_value())
          << "step " << step << " level " << level;
      if (head) ASSERT_EQ(head->id, *ref_head) << "step " << step;
    }
    if (step % 50 == 0) {
      for (RuntimeId level = 0; level < kLevels; ++level) {
        ASSERT_EQ(queue.NumInstances(level), ref.Count(level));
        for (int limit : {1, 3, 100}) {
          const auto fit = queue.BestFitBelow(level, limit);
          const auto ref_fit = ref.BestFitBelow(level, limit);
          ASSERT_EQ(fit.has_value(), ref_fit.has_value())
              << "step " << step << " level " << level << " limit " << limit;
          if (fit) ASSERT_EQ(fit->id, *ref_fit) << "step " << step;
        }
      }
      for (const auto& [id, inst] : ref.All()) {
        const InstanceLoad load = queue.Get(id);
        ASSERT_EQ(load.outstanding, inst.outstanding);
        ASSERT_EQ(load.runtime, inst.runtime);
        ASSERT_EQ(load.max_capacity, inst.capacity);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlqFuzzTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace arlo::core
