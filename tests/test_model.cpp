#include "runtime/model.h"

#include <gtest/gtest.h>

namespace arlo::runtime {
namespace {

TEST(ModelSpec, FlopsGrowsSuperlinearly) {
  const ModelSpec m = ModelSpec::BertBase();
  const double f64 = m.Flops(64);
  const double f128 = m.Flops(128);
  const double f512 = m.Flops(512);
  EXPECT_GT(f128, 2.0 * f64);  // quadratic attention term
  EXPECT_GT(f512, 4.0 * f128);
}

TEST(ModelSpec, BertLargeCostsMoreThanBase) {
  EXPECT_GT(ModelSpec::BertLarge().Flops(512),
            3.0 * ModelSpec::BertBase().Flops(512));
}

TEST(Calibrate, ReproducesAnchorsExactly) {
  for (const ModelSpec& m : {ModelSpec::BertBase(), ModelSpec::BertLarge(),
                             ModelSpec::Dolly()}) {
    const LatencyCoefficients c = Calibrate(m);
    const double lat512 = c.EvalNs(m, 512);
    const double lat64 = c.EvalNs(m, 64);
    EXPECT_NEAR(lat512, static_cast<double>(m.anchor_latency_512),
                1e-3 * lat512)
        << m.name;
    EXPECT_NEAR(lat512 / lat64, m.ratio_512_over_64, 1e-6) << m.name;
    EXPECT_GE(c.c0_ns, 0.0) << m.name;
    EXPECT_GT(c.k_ns_per_flop, 0.0) << m.name;
  }
}

// §2.1: "computation time for a sequence of length 512 is 4.22x and 5.25x
// longer than for a sequence of length 64 in Bert-Base and Bert-Large."
TEST(Calibrate, PaperRatios) {
  EXPECT_DOUBLE_EQ(ModelSpec::BertBase().ratio_512_over_64, 4.22);
  EXPECT_DOUBLE_EQ(ModelSpec::BertLarge().ratio_512_over_64, 5.25);
}

TEST(Calibrate, MonotoneInLength) {
  const ModelSpec m = ModelSpec::BertBase();
  const LatencyCoefficients c = Calibrate(m);
  double prev = 0.0;
  for (int s = 1; s <= 512; s += 13) {
    const double lat = c.EvalNs(m, s);
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

TEST(Calibrate, RejectsImpossibleAnchors) {
  ModelSpec m = ModelSpec::BertBase();
  m.ratio_512_over_64 = 100.0;  // exceeds the FLOP ratio => negative floor
  EXPECT_THROW(Calibrate(m), std::logic_error);
}

TEST(ModelSpec, FlopsRejectsNonPositiveLength) {
  EXPECT_THROW(ModelSpec::BertBase().Flops(0), std::logic_error);
}

}  // namespace
}  // namespace arlo::runtime
