#include "core/multi_level_queue.h"

#include <gtest/gtest.h>

namespace arlo::core {
namespace {

TEST(MultiLevelQueue, HeadIsLeastLoaded) {
  MultiLevelQueue q(2);
  q.AddInstance(0, 0, 10, 3);
  q.AddInstance(1, 0, 10, 1);
  q.AddInstance(2, 0, 10, 2);
  const auto head = q.Head(0);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->id, 1u);
  EXPECT_EQ(head->outstanding, 1);
}

TEST(MultiLevelQueue, EmptyLevelHasNoHead) {
  MultiLevelQueue q(2);
  q.AddInstance(0, 0, 10);
  EXPECT_FALSE(q.Head(1).has_value());
}

TEST(MultiLevelQueue, DispatchAndCompleteReorder) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 10, 0);
  q.AddInstance(1, 0, 10, 0);
  // Tie: lowest id wins.
  EXPECT_EQ(q.Head(0)->id, 0u);
  q.OnDispatch(0);
  EXPECT_EQ(q.Head(0)->id, 1u);
  q.OnDispatch(1);
  q.OnDispatch(1);
  EXPECT_EQ(q.Head(0)->id, 0u);
  q.OnComplete(1);
  q.OnComplete(1);
  EXPECT_EQ(q.Head(0)->id, 1u);
  EXPECT_EQ(q.Get(1).outstanding, 0);
}

TEST(MultiLevelQueue, CompleteForRemovedInstanceIsIgnored) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 10, 2);
  q.RemoveInstance(0);
  q.OnComplete(0);  // must not throw: in-flight work of a retired instance
  EXPECT_FALSE(q.Contains(0));
}

TEST(MultiLevelQueue, CompleteUnderflowThrows) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 10, 0);
  EXPECT_THROW(q.OnComplete(0), std::logic_error);
}

TEST(MultiLevelQueue, DoubleAddThrows) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 10);
  EXPECT_THROW(q.AddInstance(0, 0, 10), std::logic_error);
}

TEST(MultiLevelQueue, RemoveUnknownThrows) {
  MultiLevelQueue q(1);
  EXPECT_THROW(q.RemoveInstance(5), std::logic_error);
}

TEST(MultiLevelQueue, DispatchToUnknownThrows) {
  MultiLevelQueue q(1);
  EXPECT_THROW(q.OnDispatch(5), std::logic_error);
}

TEST(MultiLevelQueue, BestFitPicksMostLoadedWithHeadroom) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 5, 1);
  q.AddInstance(1, 0, 5, 4);
  q.AddInstance(2, 0, 5, 5);  // at capacity — cannot fit
  const auto fit = q.BestFit(0);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->id, 1u);
}

TEST(MultiLevelQueue, BestFitNoneWhenAllFull) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 2, 2);
  q.AddInstance(1, 0, 2, 3);
  EXPECT_FALSE(q.BestFit(0).has_value());
}

TEST(MultiLevelQueue, BestFitBelowRespectsLimit) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 10, 0);
  q.AddInstance(1, 0, 10, 1);
  q.AddInstance(2, 0, 10, 3);
  // Most loaded below 2 outstanding: instance 1.
  const auto fit = q.BestFitBelow(0, 2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->id, 1u);
  // Limit 1: only instance 0 qualifies.
  EXPECT_EQ(q.BestFitBelow(0, 1)->id, 0u);
  // Limit 0: nothing qualifies.
  EXPECT_FALSE(q.BestFitBelow(0, 0).has_value());
}

TEST(MultiLevelQueue, BestFitBelowHonorsCapacity) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, /*max_capacity=*/2, /*outstanding=*/2);
  // Below limit 5 but at capacity: not a fit.
  EXPECT_FALSE(q.BestFitBelow(0, 5).has_value());
}

TEST(MultiLevelQueue, CongestionLevel) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 60, 54);
  EXPECT_NEAR(q.Head(0)->Congestion(), 0.9, 1e-12);
}

TEST(MultiLevelQueue, LevelsAreIndependent) {
  MultiLevelQueue q(3);
  q.AddInstance(0, 0, 10, 9);
  q.AddInstance(1, 2, 10, 0);
  EXPECT_EQ(q.NumInstances(0), 1u);
  EXPECT_EQ(q.NumInstances(1), 0u);
  EXPECT_EQ(q.NumInstances(2), 1u);
  EXPECT_EQ(q.TotalInstances(), 2u);
  EXPECT_EQ(q.Head(2)->id, 1u);
}

TEST(MultiLevelQueue, SnapshotSortedByLoad) {
  MultiLevelQueue q(1);
  q.AddInstance(0, 0, 10, 5);
  q.AddInstance(1, 0, 10, 2);
  q.AddInstance(2, 0, 10, 8);
  const auto snap = q.LevelSnapshot(0);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].id, 1u);
  EXPECT_EQ(snap[1].id, 0u);
  EXPECT_EQ(snap[2].id, 2u);
}

}  // namespace
}  // namespace arlo::core
