#include "multistream/composite_scheme.h"

#include <gtest/gtest.h>

#include "baselines/scenario.h"
#include "sim/engine.h"
#include "trace/twitter.h"

namespace arlo::multistream {
namespace {

trace::Trace StreamTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

TEST(MergeStreams, TagsAndSortsByArrival) {
  const trace::Trace a = StreamTrace(50.0, 2.0, 1);
  const trace::Trace b = StreamTrace(30.0, 2.0, 2);
  const trace::Trace merged = MergeStreams({a, b});
  EXPECT_EQ(merged.Size(), a.Size() + b.Size());
  SimTime last = 0;
  std::size_t from_a = 0, from_b = 0;
  for (const auto& r : merged.Requests()) {
    EXPECT_GE(r.arrival, last);
    last = r.arrival;
    (r.stream == 0 ? from_a : from_b) += 1;
  }
  EXPECT_EQ(from_a, a.Size());
  EXPECT_EQ(from_b, b.Size());
}

TEST(SplitRecordsByStream, PartitionsRecords) {
  std::vector<RequestRecord> records(5);
  records[0].stream = 0;
  records[1].stream = 1;
  records[2].stream = 1;
  records[3].stream = 0;
  records[4].stream = 1;
  const auto split = SplitRecordsByStream(records, 2);
  EXPECT_EQ(split[0].size(), 2u);
  EXPECT_EQ(split[1].size(), 3u);
}

TEST(CompositeScheme, ServesTwoStreamsOnSharedCluster) {
  const trace::Trace base_stream = StreamTrace(150.0, 5.0, 3);
  const trace::Trace large_stream = StreamTrace(60.0, 5.0, 4);
  const trace::Trace merged = MergeStreams({base_stream, large_stream});

  CompositeScheme composite;
  {
    baselines::ScenarioConfig config;
    config.model = runtime::ModelSpec::BertBase();
    config.gpus = 3;
    config.slo = Millis(150.0);
    config.period = Seconds(2.0);
    auto runtimes = baselines::MakeRuntimeSetFor(config);
    config.initial_demand =
        baselines::DemandFromTrace(base_stream, *runtimes, config.slo);
    composite.AddStream("bert-base", baselines::MakeSchemeByName("arlo", config));
  }
  {
    baselines::ScenarioConfig config;
    config.model = runtime::ModelSpec::BertLarge();
    config.gpus = 2;
    config.slo = Millis(450.0);
    config.period = Seconds(2.0);
    auto runtimes = baselines::MakeRuntimeSetFor(config);
    config.initial_demand =
        baselines::DemandFromTrace(large_stream, *runtimes, config.slo);
    composite.AddStream("bert-large",
                        baselines::MakeSchemeByName("arlo", config));
  }

  const sim::EngineResult result = sim::RunScenario(merged, composite);
  EXPECT_EQ(result.records.size(), merged.Size());
  EXPECT_EQ(result.peak_gpus, 5);  // 3 + 2 shared-pool instances

  // Each stream's requests ran only on that stream's instances, and both
  // streams' latencies are sane.
  const auto split = SplitRecordsByStream(result.records, 2);
  EXPECT_EQ(split[0].size(), base_stream.Size());
  EXPECT_EQ(split[1].size(), large_stream.Size());
  // Bert-Large services are strictly slower than Bert-Base's smallest.
  for (const auto& r : split[1]) {
    EXPECT_GT(r.ServiceTime(), Millis(1.0));
  }
}

TEST(CompositeScheme, PerStreamAutoscalersBreatheIndependently) {
  // Stream 0 is overloaded and must scale out; stream 1 is idle-ish.
  const trace::Trace hot = StreamTrace(500.0, 8.0, 5);
  const trace::Trace cold = StreamTrace(10.0, 8.0, 6);
  const trace::Trace merged = MergeStreams({hot, cold});

  CompositeScheme composite;
  for (int k = 0; k < 2; ++k) {
    baselines::ScenarioConfig config;
    config.model = runtime::ModelSpec::BertBase();
    config.gpus = 1;
    config.slo = Millis(150.0);
    config.period = Seconds(2.0);
    config.autoscale = true;
    config.autoscaler.min_samples = 10;
    config.autoscaler.latency_window = Seconds(4.0);
    config.autoscaler.scale_out_cooldown = Seconds(1.0);
    composite.AddStream("s" + std::to_string(k),
                        baselines::MakeSchemeByName("arlo", config));
  }

  const sim::EngineResult result = sim::RunScenario(merged, composite);
  EXPECT_EQ(result.records.size(), merged.Size());
  EXPECT_GT(composite.InstancesOf(0), composite.InstancesOf(1));
}

TEST(CompositeScheme, RejectsUnknownStreamTag) {
  CompositeScheme composite;
  baselines::ScenarioConfig config;
  config.gpus = 1;
  composite.AddStream("only", baselines::MakeSchemeByName("st", config));
  std::vector<Request> reqs;
  reqs.push_back({0, Millis(1.0), 10, /*stream=*/3});
  const trace::Trace bad(std::move(reqs));
  EXPECT_THROW(sim::RunScenario(bad, composite), std::logic_error);
}

TEST(CompositeScheme, SetupRequiresStreams) {
  CompositeScheme composite;
  EXPECT_THROW(sim::RunScenario(trace::Trace{}, composite), std::logic_error);
}

}  // namespace
}  // namespace arlo::multistream
