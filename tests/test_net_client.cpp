// ClientConnection connect/reconnect semantics.  The historical bug: a
// failed Connect() left the old fd and half-decoded reply bytes in place, so
// the object was neither usable nor reconnectable.  These tests pin the
// fixed contract: failure leaves a clean disconnected object, reconnect is
// idempotent, and no decoder state leaks across connections.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace arlo::net {
namespace {

/// A hand-driven single-connection server: accepts one client and lets the
/// test feed it exact byte sequences (including partial frames).
class ManualServer {
 public:
  ManualServer() : listen_(ListenTcp(0)) {}

  std::uint16_t Port() const { return LocalPort(listen_.Get()); }

  void AcceptOne() {
    conn_ = ScopedFd(::accept(listen_.Get(), nullptr, nullptr));
    ASSERT_TRUE(conn_.Valid());
  }

  void SendBytes(const std::vector<std::uint8_t>& bytes, std::size_t n) {
    ASSERT_EQ(::send(conn_.Get(), bytes.data(), n, 0),
              static_cast<ssize_t>(n));
  }

  void SendReply(const Reply& reply) {
    std::vector<std::uint8_t> bytes;
    EncodeReply(reply, bytes);
    SendBytes(bytes, bytes.size());
  }

  bool ReadSubmit(SubmitRequest& out) {
    FrameDecoder decoder;
    Frame frame;
    std::uint8_t buf[256];
    for (;;) {
      if (decoder.Next(frame) == FrameDecoder::Result::kFrame) {
        out = frame.submit;
        return true;
      }
      const ssize_t n = ::recv(conn_.Get(), buf, sizeof(buf), 0);
      if (n <= 0) return false;
      decoder.Feed(buf, static_cast<std::size_t>(n));
    }
  }

  void CloseConn() { conn_.Reset(); }

 private:
  ScopedFd listen_;
  ScopedFd conn_;
};

/// A port with nothing listening on it (bind, read it back, close).
std::uint16_t DeadPort() {
  ScopedFd fd = ListenTcp(0);
  return LocalPort(fd.Get());
}

TEST(NetClient, FailedConnectLeavesCleanDisconnectedState) {
  const std::uint16_t dead = DeadPort();
  ClientConnection conn;
  EXPECT_FALSE(conn.Connected());
  EXPECT_THROW(conn.Connect(dead), std::system_error);
  EXPECT_FALSE(conn.Connected());
  // TryConnect on the same object reports failure without throwing.
  EXPECT_FALSE(conn.TryConnect(dead));
  EXPECT_FALSE(conn.Connected());
}

TEST(NetClient, ConnectAfterFailureSucceedsAndRoundTrips) {
  ClientConnection conn;
  EXPECT_THROW(conn.Connect(DeadPort()), std::system_error);

  ManualServer server;
  ASSERT_TRUE(conn.TryConnect(server.Port()));
  EXPECT_TRUE(conn.Connected());
  server.AcceptOne();

  SubmitRequest submit;
  submit.id = 7;
  submit.request_id = 70;
  submit.length = 128;
  conn.Send(submit);
  SubmitRequest seen;
  ASSERT_TRUE(server.ReadSubmit(seen));
  EXPECT_EQ(seen, submit);

  Reply reply;
  reply.id = 7;
  reply.request_id = 70;
  server.SendReply(reply);
  Reply got;
  ASSERT_TRUE(conn.Receive(got));
  EXPECT_EQ(got, reply);
}

TEST(NetClient, ReconnectDiscardsHalfDecodedFrameFromOldConnection) {
  ManualServer first;
  ClientConnection conn(first.Port());
  first.AcceptOne();

  // The first server sends half a reply frame; the client buffers it.
  Reply partial;
  partial.id = 1;
  std::vector<std::uint8_t> bytes;
  EncodeReply(partial, bytes);
  first.SendBytes(bytes, bytes.size() / 2);
  // Give the bytes time to land in the kernel buffer, then poison the
  // decoder by pulling them in: Receive blocks, so read via a thread that
  // is released when the server closes (EOF mid-frame throws).
  std::thread receiver([&] {
    Reply out;
    EXPECT_THROW(conn.Receive(out), std::runtime_error);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  first.CloseConn();
  receiver.join();

  // Reconnect to a fresh server: the stale half-frame must be gone, and a
  // whole reply decodes cleanly.
  ManualServer second;
  conn.Connect(second.Port());
  second.AcceptOne();
  Reply whole;
  whole.id = 2;
  whole.request_id = 20;
  whole.status = ReplyStatus::kOk;
  second.SendReply(whole);
  Reply got;
  ASSERT_TRUE(conn.Receive(got));
  EXPECT_EQ(got, whole);
}

TEST(NetClient, ReconnectWhileConnectedReplacesTheSocket) {
  ManualServer first;
  ClientConnection conn(first.Port());
  first.AcceptOne();

  ManualServer second;
  conn.Connect(second.Port());  // idempotent: drops the first connection
  second.AcceptOne();

  SubmitRequest submit;
  submit.id = 3;
  conn.Send(submit);
  SubmitRequest seen;
  ASSERT_TRUE(second.ReadSubmit(seen));
  EXPECT_EQ(seen.id, 3u);

  // The first server sees EOF — its connection was really dropped.
  SubmitRequest none;
  EXPECT_FALSE(first.ReadSubmit(none));
}

TEST(NetClient, ShutdownUnblocksReceiveWithCleanEof) {
  ManualServer server;
  ClientConnection conn(server.Port());
  server.AcceptOne();

  std::thread receiver([&] {
    Reply out;
    EXPECT_FALSE(conn.Receive(out));  // clean EOF, no throw
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  conn.Shutdown();
  receiver.join();
}

}  // namespace
}  // namespace arlo::net
