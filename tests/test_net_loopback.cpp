// End-to-end loopback tests: LiveTestbed + Server + LoadGenerator over real
// sockets on 127.0.0.1.  These run under TSan and ASan in check.sh, so they
// double as the data-race / lifetime proof for the whole net stack.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "baselines/scenario.h"
#include "net/client.h"
#include "net/server.h"
#include "telemetry/sink.h"
#include "trace/twitter.h"

namespace arlo::net {
namespace {

using baselines::MakeSchemeByName;
using baselines::ScenarioConfig;

trace::Trace StableTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.pattern = trace::TwitterTraceConfig::Pattern::kStable;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

SimDuration Percentile(std::vector<SimDuration> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

// The acceptance-criteria run: a ~1k-request Twitter-Stable trace over four
// connections, unconstrained admission.  Every request must come back kOk —
// zero lost replies — and the server/client/telemetry counters must agree.
TEST(NetLoopback, ThousandRequestTraceZeroLoss) {
  ScenarioConfig config;
  config.gpus = 2;
  auto scheme = MakeSchemeByName("st", config);
  // 250 req/s for 4 s ≈ 1000 requests at ~70% utilization (ST service is
  // ~5.7 ms/request on 2 workers), compressed 2x.
  const trace::Trace t = StableTrace(250.0, 4.0, 21);

  telemetry::TelemetryConfig tc;
  tc.concurrency = telemetry::Concurrency::kMultiThreaded;
  telemetry::TelemetrySink sink(tc);

  serving::TestbedConfig tb;
  tb.time_scale = 0.5;
  tb.telemetry = &sink;
  serving::LiveTestbed testbed(*scheme, tb);
  testbed.Start();

  ServerConfig sc;
  sc.telemetry = &sink;
  Server server(testbed, sc);
  server.Start();

  LoadGeneratorConfig lg;
  lg.port = server.Port();
  lg.connections = 4;
  lg.time_scale = 0.5;
  const LoadGeneratorResult result = RunLoadGenerator(t, lg);

  EXPECT_EQ(result.sent, t.Size());
  EXPECT_EQ(result.received, t.Size());
  EXPECT_EQ(result.Lost(), 0u);
  EXPECT_EQ(result.CountByStatus(ReplyStatus::kOk), t.Size());
  for (const auto& r : result.requests) {
    ASSERT_TRUE(r.replied) << "request " << r.id;
    EXPECT_GT(r.service_ns, 0);
    EXPECT_GE(r.queue_ns, 0);
    // Client-observed latency covers the server-reported time in system.
    EXPECT_GE(r.latency, r.queue_ns + r.service_ns);
  }

  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.connections_accepted, 4u);
  EXPECT_EQ(stats.accepted, t.Size());
  EXPECT_EQ(stats.replies_sent, t.Size());
  EXPECT_EQ(stats.TotalRejected(), 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.bytes_in, t.Size() * kSubmitFrameBytes);
  EXPECT_EQ(stats.bytes_out, t.Size() * kReplyFrameBytes);

  const serving::TestbedResult backend = testbed.Finish();
  EXPECT_EQ(backend.records.size(), t.Size());

  // Telemetry saw the same story.
  EXPECT_EQ(sink.Net().connections_total->Value(), 4u);
  EXPECT_EQ(sink.Net().accepted->Value(), t.Size());
  EXPECT_EQ(sink.Net().bytes_in->Value(), stats.bytes_in);
  EXPECT_EQ(sink.Net().bytes_out->Value(), stats.bytes_out);
  EXPECT_EQ(sink.Net().open_connections->Value(), 0);
}

// Same path through the poll(2) backend: the epoll-less fallback must be
// behaviorally identical.
TEST(NetLoopback, PollBackendFallbackServesTheSameTrace) {
  ScenarioConfig config;
  config.gpus = 2;
  auto scheme = MakeSchemeByName("st", config);
  const trace::Trace t = StableTrace(200.0, 1.0, 22);

  serving::TestbedConfig tb;
  tb.time_scale = 0.5;
  serving::LiveTestbed testbed(*scheme, tb);
  testbed.Start();

  ServerConfig sc;
  sc.force_poll = true;
  Server server(testbed, sc);
  server.Start();

  LoadGeneratorConfig lg;
  lg.port = server.Port();
  lg.connections = 2;
  lg.time_scale = 0.5;
  const LoadGeneratorResult result = RunLoadGenerator(t, lg);

  EXPECT_EQ(result.Lost(), 0u);
  EXPECT_EQ(result.CountByStatus(ReplyStatus::kOk), t.Size());

  server.Stop();
  (void)testbed.Finish();
}

// A connection that sends garbage is dropped without disturbing a healthy
// connection on the same server.
TEST(NetLoopback, GarbageConnectionIsDroppedOthersSurvive) {
  ScenarioConfig config;
  config.gpus = 1;
  auto scheme = MakeSchemeByName("st", config);
  serving::LiveTestbed testbed(*scheme, serving::TestbedConfig{});
  testbed.Start();

  Server server(testbed, ServerConfig{});
  server.Start();

  ClientConnection good(server.Port());

  // Garbage 1: an unknown-type frame — the server drops the connection and
  // the client sees EOF.
  {
    SubmitRequest msg;
    std::vector<std::uint8_t> bytes;
    EncodeSubmit(msg, bytes);
    bytes[4] = 99;  // corrupt the type byte
    ScopedFd raw(ConnectTcp(server.Port()));
    ASSERT_EQ(::send(raw.Get(), bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    std::uint8_t buf[8];
    EXPECT_EQ(::recv(raw.Get(), buf, sizeof(buf), 0), 0);
  }
  // Garbage 2: a well-formed Reply frame sent client->server is still a
  // protocol violation (servers only accept kSubmit).
  {
    Reply wrong;
    wrong.id = 1;
    std::vector<std::uint8_t> bytes;
    EncodeReply(wrong, bytes);
    ScopedFd raw(ConnectTcp(server.Port()));
    ASSERT_EQ(::send(raw.Get(), bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    std::uint8_t buf[8];
    EXPECT_EQ(::recv(raw.Get(), buf, sizeof(buf), 0), 0);
  }

  // The healthy connection still works end to end.
  SubmitRequest msg;
  msg.id = 5;
  msg.length = 128;
  good.Send(msg);
  Reply reply;
  ASSERT_TRUE(good.Receive(reply));
  EXPECT_EQ(reply.id, 5u);
  EXPECT_EQ(reply.status, ReplyStatus::kOk);

  server.Stop();
  EXPECT_GE(server.Stats().protocol_errors, 1u);
  (void)testbed.Finish();
}

// Tight admission limits under synchronous bursts: every submit is
// answered (zero loss) and the rejections carry distinct statuses.
//
// Rejections don't consume tokens, so a single burst can only surface ONE
// reject status (whichever gate fires first).  Two phases force both:
// phase A overruns the inflight cap while tokens remain; phase B runs
// after the bucket is (mostly) drained, so the rate gate — checked first —
// fires before the inflight gate can.
TEST(NetLoopback, RejectStatusesAreDistinctUnderBurst) {
  ScenarioConfig config;
  config.gpus = 1;
  auto scheme = MakeSchemeByName("st", config);
  serving::TestbedConfig tb;
  tb.time_scale = 4.0;  // stretch service to ~23 ms so bursts can't race
                        // completions even under sanitizers
  serving::LiveTestbed testbed(*scheme, tb);
  testbed.Start();

  ServerConfig sc;
  sc.admission.rate_limit = 1.0;  // ~no refill on this test's time scale
  sc.admission.burst = 4.0;
  sc.admission.max_inflight = 2;
  Server server(testbed, sc);
  server.Start();

  ClientConnection conn(server.Port());
  int ok = 0, rejected = 0;
  bool saw_rate = false, saw_inflight = false;
  auto drain = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Reply reply;
      ASSERT_TRUE(conn.Receive(reply)) << "lost reply " << i;
      switch (reply.status) {
        case ReplyStatus::kOk:
          ++ok;
          break;
        case ReplyStatus::kRejectRate:
          saw_rate = true;
          ++rejected;
          break;
        case ReplyStatus::kRejectInflight:
          saw_inflight = true;
          ++rejected;
          break;
        default:
          ++rejected;
          break;
      }
    }
  };
  auto burst = [&](int base, int n) {
    for (int i = 0; i < n; ++i) {
      SubmitRequest msg;
      msg.id = static_cast<std::uint64_t>(base + i);
      msg.length = 128;
      conn.Send(msg);
    }
  };

  // Phase A: 8 back-to-back submits against inflight cap 2 with 4 tokens —
  // 2 admits, 6 inflight rejects.  Draining the replies also waits out the
  // admitted requests (their kOk arrives after completion), so phase B
  // starts with zero inflight and ~2 tokens left.
  burst(0, 8);
  drain(8);
  EXPECT_TRUE(saw_inflight);
  EXPECT_FALSE(saw_rate);
  EXPECT_GE(ok, 2);
  EXPECT_LE(ok, 4);

  // Phase B: the bucket (not the cap) is now the binding constraint.
  const int ok_a = ok;
  burst(8, 6);
  drain(6);
  EXPECT_TRUE(saw_rate);
  EXPECT_LE(ok - ok_a, 4 - ok_a + 1);  // leftover tokens + refill slop

  EXPECT_EQ(ok + rejected, 14);

  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.accepted + stats.TotalRejected(), 14u);
  EXPECT_GT(stats.rejected_rate, 0u);
  EXPECT_GT(stats.rejected_inflight, 0u);
  (void)testbed.Finish();
}

// The headline overload claim: at ~4x the sustainable rate, admission
// control keeps the server responsive — every request is answered, the
// overflow is shed with explicit statuses, and the requests that were
// accepted still meet the SLO at p90.
TEST(NetLoopback, FourTimesOverloadStaysResponsive) {
  ScenarioConfig config;
  config.gpus = 2;
  auto scheme = MakeSchemeByName("st", config);
  // ST on 2 workers sustains ~350 req/s (5.7 ms/request); drive 1400 req/s.
  const trace::Trace t = StableTrace(1400.0, 1.0, 23);

  serving::TestbedConfig tb;
  serving::LiveTestbed testbed(*scheme, tb);
  testbed.Start();

  ServerConfig sc;
  // Inflight cap bounds the backlog an accepted request can sit behind:
  // 16 requests deep on 2 workers is ~46 ms of queue, well inside the SLO.
  sc.admission.max_inflight = 16;
  Server server(testbed, sc);
  server.Start();

  LoadGeneratorConfig lg;
  lg.port = server.Port();
  lg.connections = 4;
  lg.deadline = config.slo;  // enables deadline shedding server-side
  const LoadGeneratorResult result = RunLoadGenerator(t, lg);

  // Responsive: nothing lost, every request answered one way or the other.
  EXPECT_EQ(result.Lost(), 0u);
  const std::uint64_t ok = result.CountByStatus(ReplyStatus::kOk);
  EXPECT_GT(ok, 0u);
  EXPECT_GT(result.sent, ok);  // overload was actually shed

  // Accepted requests meet the SLO at p90.
  const std::vector<SimDuration> ok_latencies =
      result.LatenciesByStatus(ReplyStatus::kOk);
  EXPECT_LE(Percentile(ok_latencies, 0.90), config.slo);

  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.accepted, ok);
  EXPECT_EQ(stats.accepted + stats.TotalRejected(), result.sent);
  EXPECT_GT(stats.TotalRejected(), 0u);
  (void)testbed.Finish();
}

}  // namespace
}  // namespace arlo::net
