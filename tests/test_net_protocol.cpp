#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace arlo::net {
namespace {

Frame DecodeOne(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(decoder.Pending(), 0u);
  return frame;
}

TEST(NetProtocol, SubmitRoundTrip) {
  SubmitRequest msg;
  msg.id = 0x0123456789abcdefULL;
  msg.request_id = 0xfedcba9876543210ULL;
  msg.model = 7;
  msg.length = 511;
  msg.decode_len = 77;
  msg.deadline_ns = Millis(150.0);
  msg.tenant_class = 3;

  std::vector<std::uint8_t> bytes;
  EncodeSubmit(msg, bytes);
  ASSERT_EQ(bytes.size(), kSubmitFrameBytes);

  const Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, MsgType::kSubmit);
  EXPECT_EQ(frame.submit, msg);
}

TEST(NetProtocol, ReplyRoundTrip) {
  Reply msg;
  msg.id = 42;
  msg.request_id = 0x1000000000000001ULL;
  msg.status = ReplyStatus::kShedDeadline;
  msg.queue_ns = 123456789;
  msg.service_ns = -1;  // sign survives the wire

  std::vector<std::uint8_t> bytes;
  EncodeReply(msg, bytes);
  ASSERT_EQ(bytes.size(), kReplyFrameBytes);

  const Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, MsgType::kReply);
  EXPECT_EQ(frame.reply, msg);
}

TEST(NetProtocol, LayoutIsLittleEndianAndStable) {
  // Pin the exact byte layout: any change here is a wire format break.
  SubmitRequest msg;
  msg.id = 0x1122334455667788ULL;
  msg.request_id = 0x99aabbccddeeff00ULL;
  msg.model = 0xa1b2c3d4;
  msg.length = 0x00000102;
  msg.decode_len = 0x4a3b2c1d;
  msg.deadline_ns = 0x0807060504030201LL;
  msg.tenant_class = 0x5a;
  msg.flags = kSubmitFlagTrace;

  std::vector<std::uint8_t> bytes;
  EncodeSubmit(msg, bytes);
  ASSERT_EQ(bytes.size(), 44u);
  // frame_len = 40 (version + type bytes + 38-byte payload), little-endian.
  EXPECT_EQ(bytes[0], 40u);
  EXPECT_EQ(bytes[1], 0u);
  EXPECT_EQ(bytes[2], 0u);
  EXPECT_EQ(bytes[3], 0u);
  EXPECT_EQ(bytes[4], kProtocolVersion);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(MsgType::kSubmit));
  EXPECT_EQ(bytes[6], 0x88);   // id LSB first
  EXPECT_EQ(bytes[13], 0x11);
  EXPECT_EQ(bytes[14], 0x00);  // request_id LSB
  EXPECT_EQ(bytes[21], 0x99);  // request_id MSB
  EXPECT_EQ(bytes[22], 0xd4);  // model LSB
  EXPECT_EQ(bytes[26], 0x02);  // length LSB
  EXPECT_EQ(bytes[30], 0x1d);  // decode_len LSB
  EXPECT_EQ(bytes[33], 0x4a);  // decode_len MSB
  EXPECT_EQ(bytes[34], 0x01);  // deadline LSB
  EXPECT_EQ(bytes[41], 0x08);
  EXPECT_EQ(bytes[42], 0x5a);  // tenant_class (v4)
  EXPECT_EQ(bytes[43], 0x01);  // flags (v5): kSubmitFlagTrace
}

TEST(NetProtocol, V2SubmitFramesStillDecode) {
  // A v2 submit (32-byte payload, no decode_len) hand-built byte by byte.
  // Old one-shot clients must keep working against a v3 server.
  std::vector<std::uint8_t> bytes = {34, 0, 0, 0, 2,
                                     static_cast<std::uint8_t>(MsgType::kSubmit)};
  auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u64(0x1111u);                  // id
  put_u64(0x2222u);                  // request_id
  put_u32(9u);                       // model
  put_u32(384u);                     // length
  put_u64(0x0000000005f5e100ull);    // deadline_ns = 100ms
  ASSERT_EQ(bytes.size(), 4u + 34u);

  const Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, MsgType::kSubmit);
  EXPECT_EQ(frame.submit.id, 0x1111u);
  EXPECT_EQ(frame.submit.request_id, 0x2222u);
  EXPECT_EQ(frame.submit.model, 9u);
  EXPECT_EQ(frame.submit.length, 384u);
  EXPECT_EQ(frame.submit.decode_len, 0u);  // v2 is one-shot by definition
  EXPECT_EQ(frame.submit.deadline_ns, 100000000);
}

TEST(NetProtocol, V3SubmitFramesStillDecode) {
  // A v3 submit (36-byte payload: decode_len but no tenant_class) must
  // decode against a v4 server, landing in the default class 0.
  std::vector<std::uint8_t> bytes = {38, 0, 0, 0, 3,
                                     static_cast<std::uint8_t>(MsgType::kSubmit)};
  auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u64(0x3333u);  // id
  put_u64(0x4444u);  // request_id
  put_u32(2u);       // model
  put_u32(256u);     // length
  put_u32(48u);      // decode_len
  put_u64(0u);       // deadline_ns
  ASSERT_EQ(bytes.size(), 4u + 38u);

  const Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, MsgType::kSubmit);
  EXPECT_EQ(frame.submit.id, 0x3333u);
  EXPECT_EQ(frame.submit.length, 256u);
  EXPECT_EQ(frame.submit.decode_len, 48u);
  EXPECT_EQ(frame.submit.tenant_class, 0u);  // v3 has no tenant field
}

TEST(NetProtocol, V4SubmitFramesStillDecode) {
  // A v4 submit (37-byte payload: tenant_class but no flags byte) must
  // decode against a v5 server with flags = 0 (untraced).
  std::vector<std::uint8_t> bytes = {39, 0, 0, 0, 4,
                                     static_cast<std::uint8_t>(MsgType::kSubmit)};
  auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u64(0x5555u);  // id
  put_u64(0x6666u);  // request_id
  put_u32(1u);       // model
  put_u32(192u);     // length
  put_u32(16u);      // decode_len
  put_u64(0u);       // deadline_ns
  bytes.push_back(7u);  // tenant_class
  ASSERT_EQ(bytes.size(), 4u + 39u);

  const Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, MsgType::kSubmit);
  EXPECT_EQ(frame.submit.id, 0x5555u);
  EXPECT_EQ(frame.submit.length, 192u);
  EXPECT_EQ(frame.submit.tenant_class, 7u);
  EXPECT_EQ(frame.submit.flags, 0u);  // v4 has no flags byte
}

TEST(NetProtocol, CurrentVersionWithV2PayloadSizeIsAnError) {
  // A frame claiming the current version but carrying only the 32-byte v2
  // payload: the decoder must not guess which field is missing.
  std::vector<std::uint8_t> bytes = {34, 0, 0, 0, kProtocolVersion,
                                     static_cast<std::uint8_t>(MsgType::kSubmit)};
  bytes.resize(4 + 34, 0);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
  EXPECT_NE(decoder.Error().find("payload size"), std::string::npos)
      << decoder.Error();
}

TEST(NetProtocol, V1FramesAreAStickyError) {
  // A v1 submit frame: [u32 len=25][u8 type=1][24-byte payload] — no version
  // byte.  The decoder must refuse it (its type byte lands where v2 keeps
  // the version) and stay dead, not misparse it.
  std::vector<std::uint8_t> v1 = {25, 0, 0, 0,
                                  static_cast<std::uint8_t>(MsgType::kSubmit)};
  v1.resize(4 + 25, 0);
  FrameDecoder decoder;
  decoder.Feed(v1.data(), v1.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
  EXPECT_NE(decoder.Error().find("version"), std::string::npos)
      << decoder.Error();

  // A v1 reply frame aliases its type byte (2) onto the v2 version byte, so
  // it survives the version check — but its payload sizes can never match a
  // v2 message, so it still dies with a sticky error.
  std::vector<std::uint8_t> v1_reply = {26, 0, 0, 0, 2};
  v1_reply.resize(4 + 26, 0);
  FrameDecoder decoder2;
  decoder2.Feed(v1_reply.data(), v1_reply.size());
  EXPECT_EQ(decoder2.Next(frame), FrameDecoder::Result::kError);
}

TEST(NetProtocol, ResetClearsBufferAndStickyError) {
  std::vector<std::uint8_t> bad = {34, 0, 0, 0, 99};  // bad version
  bad.resize(4 + 34, 0);
  FrameDecoder decoder;
  decoder.Feed(bad.data(), bad.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);

  decoder.Reset();
  EXPECT_EQ(decoder.Pending(), 0u);
  SubmitRequest msg;
  msg.id = 5;
  msg.request_id = 6;
  std::vector<std::uint8_t> good;
  EncodeSubmit(msg, good);
  decoder.Feed(good.data(), good.size());
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.submit, msg);
}

TEST(NetProtocol, DecodesByteByByte) {
  SubmitRequest msg;
  msg.id = 9;
  msg.length = 128;
  std::vector<std::uint8_t> bytes;
  EncodeSubmit(msg, bytes);

  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kNeedMore);
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.submit, msg);
}

TEST(NetProtocol, DecodesAStreamOfMixedFrames) {
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (i % 2 == 0) {
      SubmitRequest s;
      s.id = i;
      s.length = static_cast<std::uint32_t>(10 * i);
      EncodeSubmit(s, bytes);
    } else {
      Reply r;
      r.id = i;
      r.status = ReplyStatus::kOk;
      r.queue_ns = static_cast<std::int64_t>(i) * 1000;
      EncodeReply(r, bytes);
    }
  }

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(decoder.Next(frame), FrameDecoder::Result::kFrame) << i;
    if (i % 2 == 0) {
      EXPECT_EQ(frame.type, MsgType::kSubmit);
      EXPECT_EQ(frame.submit.id, i);
    } else {
      EXPECT_EQ(frame.type, MsgType::kReply);
      EXPECT_EQ(frame.reply.id, i);
    }
  }
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kNeedMore);
}

TEST(NetProtocol, TruncatedFrameNeedsMoreThenCompletes) {
  Reply msg;
  msg.id = 77;
  std::vector<std::uint8_t> bytes;
  EncodeReply(msg, bytes);

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size() - 5);
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kNeedMore);
  EXPECT_GT(decoder.Pending(), 0u);
  decoder.Feed(bytes.data() + bytes.size() - 5, 5);
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.reply, msg);
}

TEST(NetProtocol, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = {34, 0, 0, 0, kProtocolVersion,
                                     99};  // type 99
  bytes.resize(4 + 34, 0);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
  EXPECT_FALSE(decoder.Error().empty());
}

TEST(NetProtocol, RejectsOversizedAndZeroLengthFrames) {
  {
    // frame_len = 0x10000 > kMaxFrameBytes: rejected from the prefix alone,
    // before any payload arrives.
    const std::uint8_t huge[4] = {0, 0, 1, 0};
    FrameDecoder decoder;
    decoder.Feed(huge, 4);
    Frame frame;
    EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
  }
  {
    const std::uint8_t zero[4] = {0, 0, 0, 0};
    FrameDecoder decoder;
    decoder.Feed(zero, 4);
    Frame frame;
    EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
  }
}

TEST(NetProtocol, RejectsWrongPayloadSizeForType) {
  // A kSubmit frame claiming a 10-byte payload: length/type mismatch.
  std::vector<std::uint8_t> bytes = {12, 0, 0, 0, kProtocolVersion,
                                     static_cast<std::uint8_t>(MsgType::kSubmit)};
  bytes.resize(4 + 12, 0);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
}

TEST(NetProtocol, RejectsOutOfRangeReplyStatus) {
  Reply msg;
  msg.id = 1;
  std::vector<std::uint8_t> bytes;
  EncodeReply(msg, bytes);
  bytes[4 + 2 + 16] = 200;  // status byte past the last defined status
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
}

TEST(NetProtocol, ErrorIsSticky) {
  std::vector<std::uint8_t> bad = {34, 0, 0, 0, kProtocolVersion, 99};
  bad.resize(4 + 34, 0);
  FrameDecoder decoder;
  decoder.Feed(bad.data(), bad.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);

  // A perfectly valid frame after the garbage must NOT resync.
  SubmitRequest msg;
  std::vector<std::uint8_t> good;
  EncodeSubmit(msg, good);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Result::kError);
}

// Fuzz 1: random byte soup never crashes the decoder and never yields a
// frame whose advertised type/length invariants don't hold.
TEST(NetProtocolFuzz, RandomBytesNeverCrash) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    FrameDecoder decoder;
    bool dead = false;
    for (int round = 0; round < 40 && !dead; ++round) {
      std::uint8_t chunk[64];
      const int n = 1 + static_cast<int>(rng.NextU64() % 64);
      for (int i = 0; i < n; ++i) {
        chunk[i] = static_cast<std::uint8_t>(rng.NextU64());
      }
      decoder.Feed(chunk, static_cast<std::size_t>(n));
      Frame frame;
      for (;;) {
        const FrameDecoder::Result r = decoder.Next(frame);
        if (r == FrameDecoder::Result::kNeedMore) break;
        if (r == FrameDecoder::Result::kError) {
          dead = true;  // connection would be dropped
          break;
        }
        // Any frame pulled out of random bytes must still be well-formed.
        ASSERT_TRUE(frame.type == MsgType::kSubmit ||
                    frame.type == MsgType::kReply);
      }
    }
  }
}

// Fuzz 2: corrupt one byte of a valid stream; the decoder must either keep
// decoding well-formed frames or die with a sticky error — never emit a
// frame and then misparse the remainder as anything but an error.
TEST(NetProtocolFuzz, SingleByteCorruptionEitherDecodesOrDies) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 8; ++i) {
    SubmitRequest s;
    s.id = i;
    s.length = 64;
    EncodeSubmit(s, stream);
  }

  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> mutated = stream;
    const std::size_t pos = rng.NextU64() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.NextU64() % 255);

    FrameDecoder decoder;
    decoder.Feed(mutated.data(), mutated.size());
    Frame frame;
    int frames = 0;
    for (;;) {
      const FrameDecoder::Result r = decoder.Next(frame);
      if (r == FrameDecoder::Result::kFrame) {
        ++frames;
        continue;
      }
      if (r == FrameDecoder::Result::kError) break;
      // kNeedMore: a length-field mutation can leave a frame half-claimed.
      break;
    }
    EXPECT_LE(frames, 8);
  }
}

TEST(NetProtocol, StatusNamesAreDistinct) {
  EXPECT_STRNE(ReplyStatusName(ReplyStatus::kOk),
               ReplyStatusName(ReplyStatus::kRejectQueueFull));
  EXPECT_STRNE(ReplyStatusName(ReplyStatus::kRejectRate),
               ReplyStatusName(ReplyStatus::kRejectInflight));
  EXPECT_STRNE(ReplyStatusName(ReplyStatus::kShedDeadline),
               ReplyStatusName(ReplyStatus::kError));
  EXPECT_STRNE(ReplyStatusName(ReplyStatus::kRejectNoNode),
               ReplyStatusName(ReplyStatus::kError));
  EXPECT_STRNE(ReplyStatusName(ReplyStatus::kShedClass),
               ReplyStatusName(ReplyStatus::kShedDeadline));
  EXPECT_STREQ(ReplyStatusName(ReplyStatus::kShedClass), "shed-class");
}

TEST(NetProtocol, ShedClassReplyRoundTrips) {
  Reply msg;
  msg.id = 12;
  msg.request_id = 13;
  msg.status = ReplyStatus::kShedClass;
  std::vector<std::uint8_t> bytes;
  EncodeReply(msg, bytes);
  const Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.reply.status, ReplyStatus::kShedClass);
  EXPECT_EQ(frame.reply, msg);

  // kShedClass is the last defined status: one past it must be rejected.
  bytes[4 + 2 + 16] =
      static_cast<std::uint8_t>(ReplyStatus::kShedClass) + 1;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame bad;
  EXPECT_EQ(decoder.Next(bad), FrameDecoder::Result::kError);
}

}  // namespace
}  // namespace arlo::net
