// Observability plane unit tests: the HTTP request parser/serializer, the
// lock-free flight recorder, the multi-window SLO burn-rate monitor, the
// storm-triggered dump, the TraceRecorder event cap, and the determinism
// contract (observers and mirrors must not perturb seeded trace output).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/scenario.h"
#include "obs/dump_trigger.h"
#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/slo_monitor.h"
#include "sim/engine.h"
#include "telemetry/sink.h"
#include "telemetry/trace_recorder.h"
#include "trace/twitter.h"

namespace arlo::obs {
namespace {

// --- HTTP parser ----------------------------------------------------------

TEST(ObsHttp, ParsesSimpleGet) {
  HttpRequestParser p;
  const std::string raw =
      "GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  ASSERT_TRUE(p.Complete());
  EXPECT_EQ(p.Request().method, "GET");
  EXPECT_EQ(p.Request().path, "/metrics");
  EXPECT_EQ(p.Request().headers.at("host"), "x");
  EXPECT_EQ(p.Request().body, "");
}

TEST(ObsHttp, ParsesByteAtATime) {
  HttpRequestParser p;
  const std::string raw =
      "POST /debug/dump HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  for (char c : raw) {
    ASSERT_FALSE(p.Error());
    p.Feed(&c, 1);
  }
  ASSERT_TRUE(p.Complete());
  EXPECT_EQ(p.Request().method, "POST");
  EXPECT_EQ(p.Request().path, "/debug/dump");
  EXPECT_EQ(p.Request().body, "hello");
}

TEST(ObsHttp, StripsQueryString) {
  HttpRequestParser p;
  const std::string raw = "GET /slo?window=60 HTTP/1.1\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  ASSERT_TRUE(p.Complete());
  EXPECT_EQ(p.Request().path, "/slo");
  EXPECT_EQ(p.Request().query, "window=60");
}

TEST(ObsHttp, LowercasesHeaderNames) {
  HttpRequestParser p;
  const std::string raw = "GET / HTTP/1.1\r\nCoNtEnT-TyPe: text/plain\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  ASSERT_TRUE(p.Complete());
  EXPECT_EQ(p.Request().headers.at("content-type"), "text/plain");
}

TEST(ObsHttp, RejectsMalformedRequestLine) {
  HttpRequestParser p;
  const std::string raw = "NOT-HTTP\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  EXPECT_TRUE(p.Error());
}

TEST(ObsHttp, RejectsOversizedHeaders) {
  HttpRequestParser p;
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw += std::string(HttpRequestParser::kMaxHeaderBytes, 'a');
  p.Feed(raw.data(), raw.size());
  EXPECT_TRUE(p.Error());
}

TEST(ObsHttp, SerializeResponseHasLengthAndClose) {
  HttpResponse r;
  r.status = 200;
  r.body = "abc";
  const std::string wire = SerializeResponse(r);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 3), "abc");
}

TEST(ObsHttp, ReasonPhrases) {
  EXPECT_STREQ(HttpReason(200), "OK");
  EXPECT_STREQ(HttpReason(404), "Not Found");
  EXPECT_STREQ(HttpReason(405), "Method Not Allowed");
  EXPECT_STREQ(HttpReason(503), "Service Unavailable");
}

// --- flight recorder ------------------------------------------------------

telemetry::TraceEventView MakeEvent(const char* name, SimTime ts) {
  telemetry::TraceEventView v;
  v.name = name;
  v.category = "test";
  v.phase = 'i';
  v.ts = ts;
  v.dur = 0;
  v.tid = 0;
  v.num_args = 0;
  return v;
}

TEST(ObsFlightRecorder, HoldsEverythingBelowCapacity) {
  FlightRecorder ring(8);
  for (int i = 0; i < 5; ++i) ring.Record(MakeEvent("ev", Millis(i)));
  EXPECT_EQ(ring.Recorded(), 5u);
  std::ostringstream os;
  ring.WriteJson(os);
  const std::string out = os.str();
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("\"ev\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 5u);
  EXPECT_NE(out.find("\"flight_recorder\""), std::string::npos);
}

TEST(ObsFlightRecorder, WrapKeepsOnlyTheMostRecent) {
  FlightRecorder ring(8);
  EXPECT_EQ(ring.Capacity(), 8u);
  // 100 events; only the last 8 (ts 92..99 ms) survive the wrap.
  for (int i = 0; i < 100; ++i) ring.Record(MakeEvent("ev", Millis(i)));
  EXPECT_EQ(ring.Recorded(), 100u);
  std::ostringstream os;
  ring.WriteJson(os);
  const std::string out = os.str();
  // ts serializes as microseconds: 92 ms -> 92000.000.
  EXPECT_EQ(out.find("\"ts\":91000.000"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":92000.000"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":99000.000"), std::string::npos);
  // Sorted ascending by timestamp.
  EXPECT_LT(out.find("\"ts\":92000.000"), out.find("\"ts\":99000.000"));
}

TEST(ObsFlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder ring(5);
  EXPECT_EQ(ring.Capacity(), 8u);
}

TEST(ObsFlightRecorder, ConcurrentWritersNeverProduceTornOutput) {
  // Hammer the ring from several threads while a reader dumps repeatedly;
  // every emitted event must be one of the values some writer published
  // (name/ts pairing intact).  Runs under TSan via the ObsAdmin/Obs filter.
  FlightRecorder ring(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Thread t writes only timestamps == t (mod 4), in microseconds.
        ring.Record(MakeEvent("w", 4 * static_cast<SimTime>(i++) * 1000 +
                                       t * 1000));
      }
    });
  }
  while (ring.Recorded() == 0) std::this_thread::yield();
  for (int round = 0; round < 50; ++round) {
    std::ostringstream os;
    ring.WriteJson(os);
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  std::ostringstream os;
  ring.WriteJson(os);
  EXPECT_NE(os.str().find("\"w\""), std::string::npos);
}

// --- SLO monitor ----------------------------------------------------------

SloMonitorConfig OneWindowConfig() {
  SloMonitorConfig c;
  c.target = 0.99;  // error budget 1%
  c.windows = {Seconds(10.0)};
  c.buckets_per_window = 10;
  c.alert_burn_rate = 2.0;
  c.min_events_to_alert = 10;
  return c;
}

TEST(ObsSloMonitor, BurnRateIsViolationFractionOverBudget) {
  SloMonitor mon(OneWindowConfig());
  // 96 ok + 4 violations = 4% violating against a 1% budget -> burn 4.0.
  for (int i = 0; i < 96; ++i) mon.Observe(Millis(i), false);
  for (int i = 0; i < 4; ++i) mon.Observe(Millis(96 + i), true);
  const SloStats s = mon.Stats(Millis(100));
  EXPECT_EQ(s.total, 100u);
  EXPECT_EQ(s.violations, 4u);
  EXPECT_DOUBLE_EQ(s.attainment, 0.96);
  ASSERT_EQ(s.windows.size(), 1u);
  EXPECT_NEAR(s.windows[0].burn_rate, 4.0, 1e-9);
  EXPECT_TRUE(s.windows[0].alerting);  // 4.0 >= threshold 2.0
}

TEST(ObsSloMonitor, WindowForgetsExpiredEvents) {
  SloMonitor mon(OneWindowConfig());
  for (int i = 0; i < 20; ++i) mon.Observe(Millis(i), true);
  SloStats s = mon.Stats(Seconds(1.0));
  EXPECT_EQ(s.windows[0].total, 20u);
  // 30 s later the 10 s window is empty; lifetime stats are unaffected.
  s = mon.Stats(Seconds(30.0));
  EXPECT_EQ(s.windows[0].total, 0u);
  EXPECT_DOUBLE_EQ(s.windows[0].burn_rate, 0.0);
  EXPECT_EQ(s.total, 20u);
  EXPECT_EQ(s.violations, 20u);
}

TEST(ObsSloMonitor, FewEventsNeverAlert) {
  SloMonitor mon(OneWindowConfig());
  // 5 violations is burn 100x, but below min_events_to_alert.
  for (int i = 0; i < 5; ++i) mon.Observe(Millis(i), true);
  const SloStats s = mon.Stats(Millis(10));
  EXPECT_FALSE(s.windows[0].alerting);
}

TEST(ObsSloMonitor, AlertClearsWithHysteresis) {
  SloMonitorConfig cfg = OneWindowConfig();
  cfg.min_events_to_alert = 1;
  SloMonitor mon(cfg);
  for (int i = 0; i < 10; ++i) mon.Observe(Millis(i), true);
  EXPECT_TRUE(mon.Stats(Millis(10)).windows[0].alerting);
  // Burn decays as the violations age out; once below 0.8 * threshold the
  // alert clears.  At 30 s the window is empty -> burn 0 -> cleared.
  EXPECT_FALSE(mon.Stats(Seconds(30.0)).windows[0].alerting);
}

TEST(ObsSloMonitor, ObserverClassifiesCompletionsAndSheds) {
  SloMonitorConfig cfg = OneWindowConfig();
  cfg.slo = Millis(150.0);
  SloMonitor mon(cfg);
  RequestRecord ok;
  ok.arrival = 0;
  ok.completion = Millis(10.0);  // under SLO
  mon.OnComplete(ok);
  RequestRecord slow;
  slow.arrival = Millis(100.0);
  slow.completion = Millis(400.0);  // over SLO
  mon.OnComplete(slow);
  Request shed;
  shed.arrival = Millis(200.0);
  mon.OnShed(shed, Millis(210.0));  // sheds always count as violations
  const SloStats s = mon.Stats(Millis(500.0));
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.violations, 2u);
}

TEST(ObsSloMonitor, ExportsGaugesAndAlertInstantsToSink) {
  telemetry::TelemetrySink sink;
  SloMonitorConfig cfg = OneWindowConfig();
  cfg.min_events_to_alert = 1;
  cfg.sink = &sink;
  SloMonitor mon(cfg);
  for (int i = 0; i < 10; ++i) mon.Observe(Millis(i), true);
  (void)mon.Stats(Millis(20));
  std::ostringstream prom;
  sink.WritePrometheus(prom);
  EXPECT_NE(prom.str().find("arlo_slo_burn_rate_pct{window=\"10s\"}"),
            std::string::npos)
      << prom.str();
  EXPECT_NE(prom.str().find("arlo_slo_alerts_total 1"), std::string::npos)
      << prom.str();
  std::ostringstream trace;
  sink.WriteChromeTrace(trace);
  EXPECT_NE(trace.str().find("slo_burn_alert"), std::string::npos);
}

TEST(ObsSloMonitor, WriteJsonShape) {
  SloMonitor mon(OneWindowConfig());
  mon.Observe(Millis(1), false);
  std::ostringstream os;
  mon.WriteJson(os, Millis(2));
  const std::string out = os.str();
  EXPECT_NE(out.find("\"slo_ms\":"), std::string::npos);
  EXPECT_NE(out.find("\"windows\":["), std::string::npos);
  EXPECT_NE(out.find("\"burn_rate\":"), std::string::npos);
}

// --- dump trigger ---------------------------------------------------------

TEST(ObsDumpTrigger, FiresOnceAtThresholdWithCooldown) {
  int fired = 0;
  DumpTriggerConfig cfg;
  cfg.threshold = 5;
  cfg.window = Seconds(5.0);
  cfg.cooldown = Seconds(30.0);
  cfg.on_storm = [&fired] { ++fired; };
  DumpTrigger trigger(cfg);
  for (int i = 0; i < 4; ++i) trigger.Observe(Millis(i * 10.0));
  EXPECT_EQ(fired, 0);
  trigger.Observe(Millis(40.0));  // 5th event inside the window
  EXPECT_EQ(fired, 1);
  // A sustained storm inside the cooldown does not re-fire...
  for (int i = 0; i < 20; ++i) trigger.Observe(Seconds(1.0) + Millis(i));
  EXPECT_EQ(fired, 1);
  // ...but a storm after the cooldown does.
  for (int i = 0; i < 5; ++i) trigger.Observe(Seconds(31.0) + Millis(i));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(trigger.Storms(), 2u);
}

TEST(ObsDumpTrigger, SpacedEventsNeverFire) {
  int fired = 0;
  DumpTriggerConfig cfg;
  cfg.threshold = 3;
  cfg.window = Seconds(1.0);
  cfg.on_storm = [&fired] { ++fired; };
  DumpTrigger trigger(cfg);
  for (int i = 0; i < 50; ++i) trigger.Observe(Seconds(2.0 * i));
  EXPECT_EQ(fired, 0);
}

// --- TraceRecorder cap (satellite) ----------------------------------------

TEST(ObsTraceCap, DropsOldestWhenCapped) {
  telemetry::TraceRecorder rec(/*run_id=*/1, /*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.Instant("ev", "cat", /*ts=*/Millis(i), /*tid=*/0, {});
  }
  EXPECT_EQ(rec.Size(), 4u);
  EXPECT_EQ(rec.Dropped(), 6u);
  std::ostringstream os;
  rec.WriteJson(os);
  const std::string out = os.str();
  // Oldest-first drop: ts 0..5 ms gone, 6..9 ms retained.
  EXPECT_EQ(out.find("\"ts\":5000.000"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":6000.000"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":9000.000"), std::string::npos);
}

TEST(ObsTraceCap, UnhitCapIsByteIdenticalToUnbounded) {
  // A generous cap that is never reached must not change a single byte of
  // the seeded trace artifact (the cap only drops, never reorders).
  auto run = [](std::size_t max_events) {
    telemetry::TelemetryConfig cfg;
    cfg.run_id = 77;
    cfg.max_trace_events = max_events;
    telemetry::TelemetrySink sink(cfg);
    trace::TwitterTraceConfig tc;
    tc.duration_s = 2.0;
    tc.mean_rate = 200.0;
    tc.seed = 77;
    const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
    baselines::ScenarioConfig config;
    config.gpus = 3;
    auto runtimes = baselines::MakeRuntimeSetFor(config);
    config.initial_demand =
        baselines::DemandFromTrace(t, *runtimes, config.slo);
    auto scheme = baselines::MakeSchemeByName("arlo", config);
    sim::EngineConfig engine;
    engine.telemetry = &sink;
    (void)sim::RunScenario(t, *scheme, engine);
    std::ostringstream os;
    sink.WriteChromeTrace(os);
    return os.str();
  };
  const std::string unbounded = run(0);
  const std::string capped = run(1u << 22);
  ASSERT_GT(unbounded.size(), 100u);
  EXPECT_EQ(unbounded, capped);
}

// --- determinism with the full obs plane attached -------------------------

TEST(ObsDeterminism, ObserversAndMirrorDoNotPerturbSeededTraces) {
  // The acceptance contract: attaching SloMonitor + DumpTrigger observers
  // and a FlightRecorder mirror must leave the seeded sim trace output
  // byte-identical to a bare run.
  auto run = [](bool with_obs) {
    telemetry::TelemetryConfig cfg;
    cfg.run_id = 31;
    telemetry::TelemetrySink sink(cfg);
    FlightRecorder flight(256);
    SloMonitorConfig smc;
    smc.sink = nullptr;  // gauges would (intentionally) change /metrics only
    SloMonitor slo(smc);
    DumpTriggerConfig dtc;
    dtc.on_storm = [] {};
    DumpTrigger trigger(dtc);
    if (with_obs) {
      sink.Tracer().SetMirror(&flight);
      sink.AddObserver(&slo);
      sink.AddObserver(&trigger);
    }
    trace::TwitterTraceConfig tc;
    tc.duration_s = 2.0;
    tc.mean_rate = 200.0;
    tc.seed = 31;
    const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
    baselines::ScenarioConfig config;
    config.gpus = 3;
    auto runtimes = baselines::MakeRuntimeSetFor(config);
    config.initial_demand =
        baselines::DemandFromTrace(t, *runtimes, config.slo);
    auto scheme = baselines::MakeSchemeByName("arlo", config);
    sim::EngineConfig engine;
    engine.telemetry = &sink;
    (void)sim::RunScenario(t, *scheme, engine);
    std::ostringstream os;
    sink.WriteChromeTrace(os);
    return os.str();
  };
  const std::string bare = run(false);
  const std::string observed = run(true);
  ASSERT_GT(bare.size(), 100u);
  EXPECT_EQ(bare, observed);
}

TEST(ObsDeterminism, SloBurnTrajectoryIsReproduciblePerSeed) {
  // Two identically seeded sim runs must drive the monitor through the
  // exact same burn trajectory (the injected-clock property).
  auto run = [] {
    telemetry::TelemetrySink sink;
    SloMonitor slo;
    sink.AddObserver(&slo);
    trace::TwitterTraceConfig tc;
    tc.duration_s = 2.0;
    tc.mean_rate = 300.0;
    tc.seed = 8;
    const trace::Trace t = trace::SynthesizeTwitterTrace(tc);
    baselines::ScenarioConfig config;
    config.gpus = 2;
    auto runtimes = baselines::MakeRuntimeSetFor(config);
    config.initial_demand =
        baselines::DemandFromTrace(t, *runtimes, config.slo);
    auto scheme = baselines::MakeSchemeByName("arlo", config);
    sim::EngineConfig engine;
    engine.telemetry = &sink;
    (void)sim::RunScenario(t, *scheme, engine);
    std::ostringstream os;
    slo.WriteJson(os, Seconds(2.0));
    return os.str();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace arlo::obs
