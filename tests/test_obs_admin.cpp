// Admin-plane loopback integration: AdminServer/AdminPlane over real
// sockets on 127.0.0.1 against a live testbed.  These run under TSan and
// ASan in check.sh (ObsAdmin.* is in both filters), so they double as the
// data-race / lifetime proof for the introspection plane: scrapes race
// worker threads mutating the very registries and rings being serialized.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/scenario.h"
#include "obs/admin_server.h"
#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/slo_monitor.h"
#include "serving/live_testbed.h"
#include "telemetry/sink.h"
#include "trace/twitter.h"

namespace arlo::obs {
namespace {

/// Every /metrics line must be a comment or `name[{labels}] value`, with the
/// value parseable as a number — the shape Prometheus accepts.
void ExpectValidExposition(const std::string& body) {
  std::istringstream is(body);
  std::string line;
  int samples = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    if (value != "+Inf") {
      std::size_t consumed = 0;
      (void)std::stod(value, &consumed);
      EXPECT_EQ(consumed, value.size()) << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(ObsAdmin, RoutesAndErrorsOnBareServer) {
  AdminServer server;
  server.Route("GET", "/ping", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "pong";
    return r;
  });
  server.Start();
  ASSERT_GT(server.Port(), 0);

  HttpResult r = HttpFetch(server.Port(), "GET", "/ping");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "pong");

  r = HttpFetch(server.Port(), "GET", "/nope");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 404);

  r = HttpFetch(server.Port(), "POST", "/ping");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 405);

  const AdminServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.connections, 3u);
  EXPECT_EQ(stats.requests, 3u);
  server.Stop();
}

TEST(ObsAdmin, ConcurrentClientsAllGetResponses) {
  AdminServer server;
  server.Route("GET", "/n", [](const HttpRequest&) {
    HttpResponse r;
    r.body = std::string(2000, 'x');  // force multi-packet flush paths
    return r;
  });
  server.Start();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &ok_counts, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const HttpResult r = HttpFetch(server.Port(), "GET", "/n");
        if (r.ok && r.status == 200 && r.body.size() == 2000) {
          ++ok_counts[t];
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok_counts[t], kPerThread);
  server.Stop();
}

/// Spins up a live testbed + the full admin plane the way live_serving
/// does, submits traffic, and lets each test poke the endpoints.
class ObsAdminPlaneTest : public ::testing::Test {
 protected:
  void StartPlane(bool force_poll = false) {
    telemetry::TelemetryConfig tc;
    tc.concurrency = telemetry::Concurrency::kMultiThreaded;
    sink_ = std::make_unique<telemetry::TelemetrySink>(tc);
    flight_ = std::make_unique<FlightRecorder>(1024);
    sink_->Tracer().SetMirror(flight_.get());
    SloMonitorConfig smc;
    smc.slo = config_.slo;
    smc.min_events_to_alert = 1;
    smc.sink = sink_.get();
    slo_ = std::make_unique<SloMonitor>(smc);
    sink_->AddObserver(slo_.get());

    scheme_ = baselines::MakeSchemeByName("st", config_);
    serving::TestbedConfig tb;
    tb.telemetry = sink_.get();
    backend_ = std::make_unique<serving::LiveTestbed>(*scheme_, tb);
    backend_->Start();

    AdminPlaneConfig apc;
    apc.force_poll = force_poll;
    apc.sink = sink_.get();
    apc.statusz = [this](std::ostream& os) { backend_->WriteStatusJson(os); };
    apc.healthz = [this] {
      const serving::TestbedHealth h = backend_->Health();
      AdminPlaneConfig::HealthzReport report;
      report.ok = h.ok;
      report.detail_json =
          "{\"live_workers\":" + std::to_string(h.live_workers) + "}";
      return report;
    };
    apc.now = [this] { return backend_->Now(); };
    apc.slo = slo_.get();
    apc.flight = flight_.get();
    plane_ = std::make_unique<AdminPlane>(std::move(apc));
    plane_->Start();
    ASSERT_GT(plane_->Port(), 0);
  }

  void SubmitBurst(int n) {
    for (int i = 0; i < n; ++i) {
      Request r;
      r.id = static_cast<RequestId>(next_id_++);
      r.arrival = backend_->Now();
      r.length = 64;
      backend_->Submit(r);
    }
  }

  void TearDown() override {
    if (plane_) plane_->Stop();
    if (backend_) (void)backend_->Finish();
  }

  baselines::ScenarioConfig config_;  // defaults; gpus adjusted per test
  std::unique_ptr<telemetry::TelemetrySink> sink_;
  std::unique_ptr<FlightRecorder> flight_;
  std::unique_ptr<SloMonitor> slo_;
  std::unique_ptr<sim::Scheme> scheme_;
  std::unique_ptr<serving::LiveTestbed> backend_;
  std::unique_ptr<AdminPlane> plane_;
  std::uint64_t next_id_ = 1;
};

TEST_F(ObsAdminPlaneTest, MetricsIsValidPrometheusExposition) {
  config_.gpus = 2;
  StartPlane();
  SubmitBurst(50);
  backend_->Drain();
  const HttpResult r = HttpFetch(plane_->Port(), "GET", "/metrics");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(r.content_type.find("version=0.0.4"), std::string::npos);
  ExpectValidExposition(r.body);
  EXPECT_NE(r.body.find("arlo_requests_completed_total 50"),
            std::string::npos)
      << r.body.substr(0, 2000);
}

TEST_F(ObsAdminPlaneTest, StatuszReflectsClusterState) {
  config_.gpus = 3;
  StartPlane();
  SubmitBurst(20);
  backend_->Drain();
  const HttpResult r = HttpFetch(plane_->Port(), "GET", "/statusz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("application/json"), std::string::npos);
  // Counts in the JSON must agree with the backend's own accessors.
  EXPECT_NE(r.body.find("\"live_workers\":3"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"submitted\":20"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"completed\":20"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"inflight\":0"), std::string::npos) << r.body;
  // The scheme section reports its runtime assignment.
  EXPECT_NE(r.body.find("\"scheme\":{"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"allocation\":["), std::string::npos) << r.body;
}

TEST_F(ObsAdminPlaneTest, HealthzIsOkWhileWorkersLive) {
  config_.gpus = 2;
  StartPlane();
  const HttpResult r = HttpFetch(plane_->Port(), "GET", "/healthz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"ok\":true"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"live_workers\":2"), std::string::npos) << r.body;
}

TEST_F(ObsAdminPlaneTest, SloBurnRisesUnderOverload) {
  config_.gpus = 1;
  StartPlane();
  // Baseline: a trickle the single worker absorbs within SLO.
  SubmitBurst(5);
  backend_->Drain();
  const HttpResult before = HttpFetch(plane_->Port(), "GET", "/slo");
  ASSERT_TRUE(before.ok);
  EXPECT_NE(before.body.find("\"burn_rate\":0,"), std::string::npos)
      << before.body;
  // Overload: violating completions through the sink's observer fan-out —
  // the same path worker threads use.
  for (int i = 0; i < 50; ++i) {
    RequestRecord rec;
    rec.id = 100000 + static_cast<RequestId>(i);
    rec.arrival = backend_->Now();
    rec.dispatch = rec.arrival;
    rec.start = rec.arrival;
    rec.completion = rec.arrival + 4 * config_.slo;  // way over
    sink_->RecordComplete(rec);
  }
  const HttpResult after = HttpFetch(plane_->Port(), "GET", "/slo");
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.body.find("\"burn_rate\":0,"), std::string::npos)
      << after.body;
  EXPECT_NE(after.body.find("\"alerting\":true"), std::string::npos)
      << after.body;
  // The alert also landed in the exported metrics.
  const HttpResult metrics = HttpFetch(plane_->Port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_NE(metrics.body.find("arlo_slo_alerts_total"), std::string::npos);
}

TEST_F(ObsAdminPlaneTest, DebugDumpReturnsChromeTrace) {
  config_.gpus = 2;
  StartPlane();
  SubmitBurst(30);
  backend_->Drain();
  const HttpResult r = HttpFetch(plane_->Port(), "POST", "/debug/dump");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(r.body.find("\"flight_recorder\""), std::string::npos);
  // The mirror saw the same lifecycle events the tracer recorded.
  EXPECT_NE(r.body.find("\"service\""), std::string::npos)
      << r.body.substr(0, 1000);
  // GET on a POST-only route is a method error, not a dump.
  const HttpResult wrong = HttpFetch(plane_->Port(), "GET", "/debug/dump");
  ASSERT_TRUE(wrong.ok);
  EXPECT_EQ(wrong.status, 405);
}

TEST_F(ObsAdminPlaneTest, ScrapeStormWhileServing) {
  // Scrapes from several threads race live dispatch — the TSan money shot.
  config_.gpus = 2;
  StartPlane();
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([this] {
      for (int i = 0; i < 8; ++i) {
        const HttpResult m = HttpFetch(plane_->Port(), "GET", "/metrics");
        EXPECT_TRUE(m.ok);
        const HttpResult s = HttpFetch(plane_->Port(), "GET", "/statusz");
        EXPECT_TRUE(s.ok);
        const HttpResult d = HttpFetch(plane_->Port(), "POST", "/debug/dump");
        EXPECT_TRUE(d.ok);
      }
    });
  }
  for (int burst = 0; burst < 10; ++burst) {
    SubmitBurst(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& s : scrapers) s.join();
  backend_->Drain();
  const HttpResult r = HttpFetch(plane_->Port(), "GET", "/metrics");
  ASSERT_TRUE(r.ok);
  ExpectValidExposition(r.body);
  EXPECT_NE(r.body.find("arlo_requests_completed_total 100"),
            std::string::npos);
}

TEST_F(ObsAdminPlaneTest, PollBackendServesTheSameEndpoints) {
  config_.gpus = 2;
  StartPlane(/*force_poll=*/true);
  SubmitBurst(10);
  backend_->Drain();
  for (const char* path : {"/metrics", "/healthz", "/statusz", "/slo"}) {
    const HttpResult r = HttpFetch(plane_->Port(), "GET", path);
    ASSERT_TRUE(r.ok) << path;
    EXPECT_EQ(r.status, 200) << path;
    EXPECT_FALSE(r.body.empty()) << path;
  }
}

TEST(ObsAdmin, EndpointsAnswer503WhenProvidersAbsent) {
  AdminPlaneConfig apc;  // everything null
  AdminPlane plane(apc);
  plane.Start();
  for (const char* path : {"/metrics", "/statusz", "/slo"}) {
    const HttpResult r = HttpFetch(plane.Port(), "GET", path);
    ASSERT_TRUE(r.ok) << path;
    EXPECT_EQ(r.status, 503) << path;
  }
  // No health provider means "process is up": /healthz stays 200.
  const HttpResult h = HttpFetch(plane.Port(), "GET", "/healthz");
  ASSERT_TRUE(h.ok);
  EXPECT_EQ(h.status, 200);
  const HttpResult d = HttpFetch(plane.Port(), "POST", "/debug/dump");
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.status, 503);
  const HttpResult index = HttpFetch(plane.Port(), "GET", "/");
  ASSERT_TRUE(index.ok);
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  plane.Stop();
}

TEST(ObsAdmin, ReallocVerbParsesAppliesAndRejects) {
  // The cluster Runtime Scheduler's delta wire format: POST /realloc with
  // alloc=n0,n1,... in the query string (or urlencoded body).  200 when the
  // node applies it, 409 when it refuses (rollout in flight), 400 on a
  // malformed vector, 503 without a provider.
  std::vector<int> received;
  bool accept = true;
  AdminPlaneConfig apc;
  apc.realloc = [&](const std::vector<int>& allocation) {
    received = allocation;
    return accept;
  };
  AdminPlane plane(std::move(apc));
  plane.Start();

  HttpResult r = HttpFetch(plane.Port(), "POST", "/realloc?alloc=1,0,3");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"applied\":true"), std::string::npos);
  EXPECT_EQ(received, (std::vector<int>{1, 0, 3}));

  // Body form, with unrelated parameters around the vector.
  received.clear();
  r = HttpFetch(plane.Port(), "POST", "/realloc", "dry=0&alloc=0,2&x=1");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(received, (std::vector<int>{0, 2}));

  // The node refusing the vector is a retryable 409, not a success.
  accept = false;
  r = HttpFetch(plane.Port(), "POST", "/realloc?alloc=9");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 409);
  EXPECT_NE(r.body.find("\"applied\":false"), std::string::npos);

  // Malformed vectors never reach the provider.
  accept = true;
  received.clear();
  for (const char* bad :
       {"/realloc", "/realloc?alloc=", "/realloc?alloc=1,x,2",
        "/realloc?alloc=1,,2", "/realloc?realloc=1,2"}) {
    r = HttpFetch(plane.Port(), "POST", bad);
    ASSERT_TRUE(r.ok) << bad;
    EXPECT_EQ(r.status, 400) << bad;
    EXPECT_TRUE(received.empty()) << bad;
  }
  plane.Stop();

  AdminPlaneConfig bare;  // no realloc provider wired
  AdminPlane none(std::move(bare));
  none.Start();
  r = HttpFetch(none.Port(), "POST", "/realloc?alloc=1,2");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 503);
  none.Stop();
}

}  // namespace
}  // namespace arlo::obs
