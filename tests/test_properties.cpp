// Cross-cutting property tests (parameterized sweeps):
//   * engine conservation — every scheme serves every request exactly once,
//     with monotone per-request timestamps, across schemes × seeds;
//   * LP solutions match brute-force vertex enumeration on random small LPs;
//   * allocation evaluator invariants (mass conservation in the cascade).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/scenario.h"
#include "common/rng.h"
#include "sim/engine.h"
#include "solver/allocation.h"
#include "solver/lp.h"
#include "trace/twitter.h"

namespace arlo {
namespace {

// --- engine conservation -----------------------------------------------------

struct ConservationCase {
  const char* scheme;
  std::uint64_t seed;
};

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ConservationTest, EveryRequestServedExactlyOnceWithSaneTimestamps) {
  const auto [scheme_name, seed] = GetParam();
  trace::TwitterTraceConfig tc;
  tc.duration_s = 6.0;
  tc.mean_rate = 250.0;
  tc.seed = static_cast<std::uint64_t>(seed) * 7919;
  tc.pattern = seed % 2 == 0 ? trace::TwitterTraceConfig::Pattern::kStable
                             : trace::TwitterTraceConfig::Pattern::kBursty;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  baselines::ScenarioConfig config;
  config.gpus = 3;
  config.period = Seconds(2.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand = baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName(scheme_name, config);
  const sim::EngineResult result = sim::RunScenario(t, *scheme);

  ASSERT_EQ(result.records.size(), t.Size());
  std::vector<bool> seen(t.Size(), false);
  for (const auto& r : result.records) {
    ASSERT_LT(r.id, t.Size());
    EXPECT_FALSE(seen[r.id]) << "request served twice";
    seen[r.id] = true;
    EXPECT_GE(r.dispatch, r.arrival);
    EXPECT_GE(r.start, r.dispatch);
    EXPECT_GT(r.completion, r.start);
    EXPECT_GE(r.length, 1);
    EXPECT_LE(r.length, 512);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, ConservationTest,
    ::testing::Combine(::testing::Values("arlo", "arlo-ilb", "arlo-ig", "st",
                                         "dt", "infaas"),
                       ::testing::Values(1, 2, 3)));

// --- LP vs vertex enumeration -----------------------------------------------

/// Brute-force reference: enumerate all basic feasible points of a 2-var LP
/// with <= constraints (intersect every constraint pair + axes) and take
/// the best feasible one.
double BruteForceLp2(const solver::LpProblem& p) {
  std::vector<std::pair<double, double>> candidates = {{0.0, 0.0}};
  // Constraint lines: a*x + b*y = c; axes x=0, y=0.
  struct Line {
    double a, b, c;
  };
  std::vector<Line> lines = {{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  for (const auto& con : p.constraints) {
    lines.push_back({con.coeffs[0], con.coeffs[1], con.rhs});
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-12) continue;
      const double x = (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double y = (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      candidates.push_back({x, y});
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [x, y] : candidates) {
    if (x < -1e-9 || y < -1e-9) continue;
    bool feasible = true;
    for (const auto& con : p.constraints) {
      if (con.coeffs[0] * x + con.coeffs[1] * y > con.rhs + 1e-9) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      best = std::min(best, p.objective[0] * x + p.objective[1] * y);
    }
  }
  return best;
}

class LpVertexTest : public ::testing::TestWithParam<int> {};

TEST_P(LpVertexTest, SimplexMatchesVertexEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  solver::LpProblem p;
  p.objective = {rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)};
  const int m = static_cast<int>(rng.UniformInt(2, 5));
  for (int i = 0; i < m; ++i) {
    p.AddConstraint({rng.Uniform(0.1, 3.0), rng.Uniform(0.1, 3.0)},
                    solver::Relation::kLessEq, rng.Uniform(1.0, 10.0));
  }
  // Positive coefficients + positive rhs: bounded iff objective has a
  // negative direction; the box of constraints always bounds the feasible
  // region only if both objective coords can't decrease forever — negative
  // objective entries are fine since x, y >= 0 and constraints cap growth.
  const solver::LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, solver::LpStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(s.objective, BruteForceLp2(p), 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpVertexTest, ::testing::Range(1, 25));

// --- allocation cascade invariants -------------------------------------------

class CascadeInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(CascadeInvariantTest, MassIsConservedThroughDemotion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  solver::AllocationProblem p;
  const int n = static_cast<int>(rng.UniformInt(2, 6));
  p.gpus = static_cast<int>(rng.UniformInt(n, 3 * n));
  for (int i = 0; i < n; ++i) {
    runtime::RuntimeProfile prof;
    prof.id = static_cast<RuntimeId>(i);
    prof.max_length = 64 * (i + 1);
    prof.compute_time = Millis(rng.Uniform(0.5, 2.0) * (i + 1));
    prof.capacity_within_slo = std::max(
        1, static_cast<int>(Millis(150.0) / prof.compute_time));
    p.profiles.push_back(prof);
    p.demand.push_back(rng.Uniform(0.0, 30.0));
  }
  // Random allocation summing to gpus with at least 1 on the last runtime.
  std::vector<int> alloc(static_cast<std::size_t>(n), 0);
  alloc.back() = 1;
  for (int g = 1; g < p.gpus; ++g) {
    ++alloc[static_cast<std::size_t>(rng.UniformInt(0, n - 1))];
  }
  const solver::AllocationEval eval = EvaluateAllocation(p, alloc);

  // Processed + final unabsorbed == total demand (nothing lost/created).
  double processed = 0.0, demand = 0.0;
  for (double c : eval.processed) processed += c;
  for (double q : p.demand) demand += q;
  EXPECT_NEAR(processed, demand, 1e-9) << "seed " << GetParam();
  // Carryover is non-negative and zero at the last runtime.
  for (double r : eval.carryover) EXPECT_GE(r, 0.0);
  EXPECT_DOUBLE_EQ(eval.carryover.back(), 0.0);
  // Objective is finite and non-negative for feasible allocations.
  EXPECT_TRUE(eval.feasible);
  EXPECT_GE(eval.objective, 0.0);
  EXPECT_TRUE(std::isfinite(eval.objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeInvariantTest, ::testing::Range(1, 17));

}  // namespace
}  // namespace arlo
