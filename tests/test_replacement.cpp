#include "core/replacement.h"

#include <gtest/gtest.h>

namespace arlo::core {
namespace {

TEST(PlanReplacement, NoopWhenTargetMatches) {
  const std::vector<DeployedInstance> current = {
      {0, 0, 1}, {1, 0, 2}, {2, 1, 0}};
  const ReplacementPlan plan = PlanReplacement(current, {2, 1});
  EXPECT_EQ(plan.TotalReplacements(), 0u);
}

TEST(PlanReplacement, MinimalMoves) {
  // Have 3 of runtime 0, need 1 of runtime 0 and 2 of runtime 1.
  const std::vector<DeployedInstance> current = {
      {0, 0, 5}, {1, 0, 1}, {2, 0, 3}};
  const ReplacementPlan plan = PlanReplacement(current, {1, 2});
  EXPECT_EQ(plan.TotalReplacements(), 2u);
  for (const auto& batch : plan.batches) {
    for (const auto& step : batch) {
      EXPECT_EQ(step.from, 0u);
      EXPECT_EQ(step.to, 1u);
    }
  }
}

TEST(PlanReplacement, ReleasesLeastBusyFirst) {
  const std::vector<DeployedInstance> current = {
      {0, 0, 9}, {1, 0, 0}, {2, 0, 4}};
  const ReplacementPlan plan = PlanReplacement(current, {1, 2});
  ASSERT_EQ(plan.TotalReplacements(), 2u);
  // Instances 1 (load 0) and 2 (load 4) go; the busy instance 0 stays.
  std::vector<InstanceId> moved;
  for (const auto& batch : plan.batches) {
    for (const auto& step : batch) moved.push_back(step.instance);
  }
  EXPECT_EQ(moved[0], 1u);
  EXPECT_EQ(moved[1], 2u);
}

TEST(PlanReplacement, BatchesRespectSize) {
  std::vector<DeployedInstance> current;
  for (InstanceId i = 0; i < 7; ++i) current.push_back({i, 0, 0});
  const ReplacementPlan plan = PlanReplacement(current, {0, 7}, 2);
  EXPECT_EQ(plan.TotalReplacements(), 7u);
  ASSERT_EQ(plan.batches.size(), 4u);
  EXPECT_EQ(plan.batches[0].size(), 2u);
  EXPECT_EQ(plan.batches[3].size(), 1u);
}

TEST(PlanReplacement, CrossRuntimeShuffle) {
  // (2, 2, 0) -> (0, 2, 2): two replacements from runtime 0 to runtime 2.
  const std::vector<DeployedInstance> current = {
      {0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 0}};
  const ReplacementPlan plan = PlanReplacement(current, {0, 2, 2});
  EXPECT_EQ(plan.TotalReplacements(), 2u);
  for (const auto& batch : plan.batches) {
    for (const auto& step : batch) {
      EXPECT_EQ(step.from, 0u);
      EXPECT_EQ(step.to, 2u);
    }
  }
}

TEST(PlanReplacement, RejectsGrowth) {
  const std::vector<DeployedInstance> current = {{0, 0, 0}};
  EXPECT_THROW(PlanReplacement(current, {1, 1}), std::logic_error);
}

TEST(PlanReplacement, RejectsUnknownRuntime) {
  const std::vector<DeployedInstance> current = {{0, 5, 0}};
  EXPECT_THROW(PlanReplacement(current, {1}), std::logic_error);
}

TEST(PlanReplacement, ShrinkingTargetLeavesSurplus) {
  // Target total (1) < deployed (2): one instance simply keeps its runtime;
  // no replacement step is emitted for pure surplus.
  const std::vector<DeployedInstance> current = {{0, 0, 0}, {1, 0, 0}};
  const ReplacementPlan plan = PlanReplacement(current, {1, 0});
  EXPECT_EQ(plan.TotalReplacements(), 0u);
}

}  // namespace
}  // namespace arlo::core
