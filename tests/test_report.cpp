#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.h"

namespace arlo::sim {
namespace {

RequestRecord Rec(RequestId id, double arrival_ms, double start_ms,
                  double completion_ms, RuntimeId runtime, int length = 64) {
  RequestRecord r;
  r.id = id;
  r.arrival = SimTime(Millis(arrival_ms));
  r.dispatch = r.arrival;
  r.start = SimTime(Millis(start_ms));
  r.completion = SimTime(Millis(completion_ms));
  r.length = length;
  r.runtime = runtime;
  r.instance = static_cast<InstanceId>(runtime);
  return r;
}

TEST(MakeReport, SummarizesLatencyAndCopiesGpuStats) {
  EngineResult result;
  result.records = {Rec(0, 0.0, 0.0, 10.0, 0), Rec(1, 0.0, 10.0, 30.0, 1),
                    Rec(2, 0.0, 30.0, 80.0, 1)};
  result.time_weighted_gpus = 3.5;
  result.peak_gpus = 5;
  result.gpu_busy_fraction = 0.75;

  const SchemeReport report = MakeReport("arlo", result, Millis(50.0));
  EXPECT_EQ(report.name, "arlo");
  EXPECT_EQ(report.latency.count, 3u);
  EXPECT_DOUBLE_EQ(report.latency.mean_ms, 40.0);
  EXPECT_DOUBLE_EQ(report.latency.p50_ms, 30.0);
  // One of three records (80 ms) violates the 50 ms SLO.
  EXPECT_NEAR(report.latency.slo_violation_frac, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.time_weighted_gpus, 3.5);
  EXPECT_EQ(report.peak_gpus, 5);
  EXPECT_DOUBLE_EQ(report.gpu_busy_fraction, 0.75);
}

TEST(MakeReport, EmptyRecordsYieldZeroSummary) {
  EngineResult result;
  const SchemeReport report = MakeReport("st", result, Millis(50.0));
  EXPECT_EQ(report.latency.count, 0u);
  EXPECT_DOUBLE_EQ(report.latency.mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(report.latency.p98_ms, 0.0);
}

TEST(PrintLatencyCdf, EmptyRecordsPrintsAllQuantileRows) {
  std::ostringstream os;
  PrintLatencyCdf(os, "empty cdf", {}, /*points=*/4);
  const std::string out = os.str();
  EXPECT_NE(out.find("empty cdf"), std::string::npos);
  // Four quantile rows, each 0 ms on an empty sample set.
  EXPECT_NE(out.find("0.25"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(PrintLatencyCdf, SingletonRepeatsTheOnlyLatency) {
  std::ostringstream os;
  PrintLatencyCdf(os, "one", {Rec(0, 0.0, 0.0, 12.5, 0)}, /*points=*/3);
  const std::string out = os.str();
  // Every quantile of a single sample is that sample.
  std::size_t hits = 0;
  for (std::size_t pos = out.find("12.5"); pos != std::string::npos;
       pos = out.find("12.5", pos + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, 3u);
}

TEST(PrintPerRuntimeBreakdown, GroupsByRuntime) {
  std::ostringstream os;
  PrintPerRuntimeBreakdown(
      os, {Rec(0, 0.0, 0.0, 10.0, 0), Rec(1, 0.0, 0.0, 20.0, 0),
           Rec(2, 0.0, 0.0, 40.0, 2)});
  const std::string out = os.str();
  EXPECT_NE(out.find("per-runtime breakdown"), std::string::npos);
  // Runtime 0: two requests at mean 15 ms; runtime 2: one at 40 ms.
  EXPECT_NE(out.find("15"), std::string::npos);
  EXPECT_NE(out.find("40"), std::string::npos);
}

TEST(PrintComparison, OneRowPerScheme) {
  EngineResult result;
  result.records = {Rec(0, 0.0, 0.0, 10.0, 0)};
  std::ostringstream os;
  PrintComparison(os, "head-to-head",
                  {MakeReport("arlo", result, Millis(50.0)),
                   MakeReport("dt", result, Millis(50.0))});
  const std::string out = os.str();
  EXPECT_NE(out.find("arlo"), std::string::npos);
  EXPECT_NE(out.find("dt"), std::string::npos);
  EXPECT_NE(out.find("slo_viol_%"), std::string::npos);
}

TEST(PaddingWasteOfRun, DynamicRuntimePadsNothing) {
  const runtime::ModelSpec model = runtime::ModelSpec::BertBase();
  // Runtime 0 compiled for max length 512, runtime 1 dynamic (0).
  const std::vector<RequestRecord> records = {Rec(0, 0, 0, 1, 0, /*length=*/64),
                                              Rec(1, 0, 0, 1, 1,
                                                  /*length=*/64)};
  const double waste_static =
      PaddingWasteOfRun({records[0]}, model, {512, 0});
  const double waste_dynamic =
      PaddingWasteOfRun({records[1]}, model, {512, 0});
  EXPECT_GT(waste_static, 0.5);  // 64 of 512 tokens useful => mostly padding
  EXPECT_DOUBLE_EQ(waste_dynamic, 0.0);
}

}  // namespace
}  // namespace arlo::sim
