#include "core/request_scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "runtime/runtime_set.h"

namespace arlo::core {
namespace {

std::shared_ptr<const runtime::RuntimeSet> MakeFourRuntimes() {
  runtime::SimulatedCompiler compiler;
  return std::make_shared<runtime::RuntimeSet>(
      runtime::MakeUniformRuntimeSet(compiler, runtime::ModelSpec::BertBase(),
                                     4));  // max_lengths 128/256/384/512
}

// The worked example of Fig. 5 / §3.4: L=3, λ=0.85, α=0.9.  A request of
// length 200 has candidates Q2(256), Q3(384), Q4(512).  Q2's head is 54/60
// (0.9 > 0.85 → congested); Q3's head is 28/48 (0.583 < 0.85*0.9=0.765 →
// selected).
TEST(RequestScheduler, Figure5WorkedExample) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  queue.AddInstance(/*id=*/10, /*runtime=*/1, /*max_capacity=*/60, 54);
  queue.AddInstance(/*id=*/11, /*runtime=*/1, 60, 58);
  queue.AddInstance(/*id=*/20, /*runtime=*/2, 48, 28);
  queue.AddInstance(/*id=*/21, /*runtime=*/2, 48, 40);
  queue.AddInstance(/*id=*/30, /*runtime=*/3, 40, 5);

  RequestSchedulerParams params;
  params.lambda = 0.85;
  params.alpha = 0.9;
  params.max_peek = 3;
  RequestScheduler scheduler(runtimes.get(), &queue, params);

  const auto decision = scheduler.Select(200);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->runtime, 2u);
  EXPECT_EQ(decision->instance, 20u);
  EXPECT_TRUE(decision->demoted);
  EXPECT_FALSE(decision->fell_back);
  EXPECT_EQ(decision->levels_peeked, 2);
}

TEST(RequestScheduler, PicksIdealWhenUncongested) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  queue.AddInstance(0, 0, 100, 10);
  queue.AddInstance(1, 3, 10, 0);
  RequestScheduler scheduler(runtimes.get(), &queue);
  const auto decision = scheduler.Select(100);  // ideal = runtime 0 (128)
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->runtime, 0u);
  EXPECT_FALSE(decision->demoted);
}

TEST(RequestScheduler, FallsBackToTopCandidateWhenAllCongested) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  // All candidate heads far over every decayed threshold.
  queue.AddInstance(0, 1, 10, 10);
  queue.AddInstance(1, 2, 10, 10);
  queue.AddInstance(2, 3, 10, 10);
  RequestScheduler scheduler(runtimes.get(), &queue);
  const auto decision = scheduler.Select(200);  // candidates: 1, 2, 3
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->fell_back);
  EXPECT_EQ(decision->runtime, 1u);  // top candidate (lines 18-19)
  EXPECT_EQ(decision->instance, 0u);
}

TEST(RequestScheduler, SkipsLevelsWithoutInstances) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  queue.AddInstance(0, 3, 100, 0);  // only the largest runtime is deployed
  RequestScheduler scheduler(runtimes.get(), &queue);
  const auto decision = scheduler.Select(10);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->runtime, 3u);
  EXPECT_TRUE(decision->demoted);
}

TEST(RequestScheduler, ReturnsNulloptWhenNothingDeployed) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  RequestScheduler scheduler(runtimes.get(), &queue);
  EXPECT_FALSE(scheduler.Select(10).has_value());
}

TEST(RequestScheduler, MaxPeekLimitsDemotionDepth) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  queue.AddInstance(0, 0, 10, 10);   // congested ideal
  queue.AddInstance(1, 1, 10, 10);   // congested
  queue.AddInstance(2, 2, 10, 0);    // idle — but beyond L=2
  RequestSchedulerParams params;
  params.max_peek = 2;
  RequestScheduler scheduler(runtimes.get(), &queue, params);
  const auto decision = scheduler.Select(10);
  ASSERT_TRUE(decision.has_value());
  // Could not peek level 2, so it falls back to the top candidate.
  EXPECT_TRUE(decision->fell_back);
  EXPECT_EQ(decision->runtime, 0u);
}

TEST(RequestScheduler, ThresholdDecayMakesDemotionConservative) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  // Ideal at 0.86 (just over λ=0.85); next at 0.80 — passes λ*α=0.765?
  // 0.80 > 0.765, so it too is rejected; third at 0.70 passes 0.6885? No:
  // 0.70 > 0.6885 → rejected; falls back to ideal.
  queue.AddInstance(0, 0, 100, 86);
  queue.AddInstance(1, 1, 100, 80);
  queue.AddInstance(2, 2, 100, 70);
  RequestScheduler scheduler(runtimes.get(), &queue);
  const auto decision = scheduler.Select(10);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->fell_back);
  EXPECT_EQ(decision->runtime, 0u);
}

TEST(RequestScheduler, RequestTooLongThrows) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  RequestScheduler scheduler(runtimes.get(), &queue);
  EXPECT_THROW(scheduler.Select(513), std::logic_error);
}

TEST(RequestScheduler, ValidatesParams) {
  auto runtimes = MakeFourRuntimes();
  MultiLevelQueue queue(4);
  RequestSchedulerParams bad;
  bad.alpha = 0.0;
  EXPECT_THROW(RequestScheduler(runtimes.get(), &queue, bad),
               std::logic_error);
  bad = {};
  bad.max_peek = 0;
  EXPECT_THROW(RequestScheduler(runtimes.get(), &queue, bad),
               std::logic_error);
}

}  // namespace
}  // namespace arlo::core
