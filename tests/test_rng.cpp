#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace arlo {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(SplitMix64(s1), SplitMix64(s2));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, SeedsProduceDistinctStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.005);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(10);
  std::vector<double> xs;
  constexpr int kN = 100001;
  xs.reserve(kN);
  for (int i = 0; i < kN; ++i) xs.push_back(rng.LogNormal(3.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + kN / 2, xs.end());
  EXPECT_NEAR(xs[kN / 2], std::exp(3.0), 0.2);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / kN, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(12);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const int x = rng.Poisson(500.0);
    sum += x;
    sq += static_cast<double>(x) * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 500.0, 1.0);
  EXPECT_NEAR(var, 500.0, 25.0);  // Poisson: variance == mean
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(13);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(15);
  Rng child = parent.Split();
  // Child and parent produce uncorrelated sequences (no equal prefix).
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(16);
  EXPECT_THROW(rng.Exponential(0.0), std::logic_error);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(17);
  EXPECT_THROW(rng.UniformInt(3, 2), std::logic_error);
}

}  // namespace
}  // namespace arlo
