#include "runtime/runtime_set.h"

#include <gtest/gtest.h>

#include "runtime/profiler.h"

namespace arlo::runtime {
namespace {

TEST(DetectStaircaseStep, FindsThe64TokenStep) {
  EXPECT_EQ(DetectStaircaseStep(ModelSpec::BertBase()), 64);
  EXPECT_EQ(DetectStaircaseStep(ModelSpec::BertLarge()), 64);
}

TEST(MakeArloRuntimeSet, EightRuntimesAtStepMultiples) {
  SimulatedCompiler compiler;
  const RuntimeSet set = MakeArloRuntimeSet(compiler, ModelSpec::BertBase());
  // §3.3: "the original model with a max_length of 512 would have eight
  // runtimes (512/64=8)".
  ASSERT_EQ(set.Size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(set.Runtime(static_cast<RuntimeId>(i)).MaxLength(),
              64 * static_cast<int>(i + 1));
    EXPECT_EQ(set.Runtime(static_cast<RuntimeId>(i)).Kind(),
              CompilationKind::kStatic);
  }
  EXPECT_EQ(compiler.ArtifactCount(), 8);
}

TEST(RuntimeSet, IdealRuntimeMinimizesPadding) {
  SimulatedCompiler compiler;
  const RuntimeSet set = MakeArloRuntimeSet(compiler, ModelSpec::BertBase());
  EXPECT_EQ(set.IdealRuntimeFor(1), 0u);
  EXPECT_EQ(set.IdealRuntimeFor(64), 0u);
  EXPECT_EQ(set.IdealRuntimeFor(65), 1u);
  EXPECT_EQ(set.IdealRuntimeFor(200), 3u);  // 256 runtime
  EXPECT_EQ(set.IdealRuntimeFor(512), 7u);
  EXPECT_EQ(set.IdealRuntimeFor(513), kInvalidRuntime);
}

TEST(RuntimeSet, CandidatesAscendFromIdeal) {
  SimulatedCompiler compiler;
  const RuntimeSet set = MakeArloRuntimeSet(compiler, ModelSpec::BertBase());
  const auto candidates = set.CandidatesFor(200);
  ASSERT_EQ(candidates.size(), 5u);  // runtimes 256..512
  EXPECT_EQ(candidates.front(), 3u);
  EXPECT_EQ(candidates.back(), 7u);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i], candidates[i - 1] + 1);
  }
}

TEST(RuntimeSet, BinUpperBounds) {
  SimulatedCompiler compiler;
  const RuntimeSet set = MakeArloRuntimeSet(compiler, ModelSpec::BertBase());
  const auto bounds = set.BinUpperBounds();
  ASSERT_EQ(bounds.size(), 8u);
  EXPECT_EQ(bounds.front(), 64);
  EXPECT_EQ(bounds.back(), 512);
  EXPECT_EQ(set.LargestMaxLength(), 512);
}

TEST(MakeUniformRuntimeSet, HonorsRequestedCount) {
  SimulatedCompiler compiler;
  for (int n : {2, 4, 8, 16}) {
    const RuntimeSet set =
        MakeUniformRuntimeSet(compiler, ModelSpec::BertLarge(), n);
    ASSERT_EQ(set.Size(), static_cast<std::size_t>(n));
    EXPECT_EQ(set.Runtime(0).MaxLength(), 512 / n);
    EXPECT_EQ(set.LargestMaxLength(), 512);
  }
}

TEST(MakeUniformRuntimeSet, RejectsNonDividingCount) {
  SimulatedCompiler compiler;
  EXPECT_THROW(MakeUniformRuntimeSet(compiler, ModelSpec::BertBase(), 3),
               std::logic_error);
}

TEST(MakeSingleSets, StAndDtShapes) {
  SimulatedCompiler compiler;
  const RuntimeSet st = MakeSingleStaticSet(compiler, ModelSpec::BertBase());
  ASSERT_EQ(st.Size(), 1u);
  EXPECT_EQ(st.Runtime(0).Kind(), CompilationKind::kStatic);
  EXPECT_EQ(st.Runtime(0).MaxLength(), 512);

  const RuntimeSet dt = MakeSingleDynamicSet(compiler, ModelSpec::BertBase());
  ASSERT_EQ(dt.Size(), 1u);
  EXPECT_EQ(dt.Runtime(0).Kind(), CompilationKind::kDynamic);
}

TEST(RuntimeSet, RejectsNonAscendingRuntimes) {
  SimulatedCompiler compiler;
  const ModelSpec m = ModelSpec::BertBase();
  std::vector<std::shared_ptr<const CompiledRuntime>> runtimes;
  runtimes.push_back(compiler.Compile(m, CompilationKind::kStatic, 128));
  runtimes.push_back(compiler.Compile(m, CompilationKind::kStatic, 64));
  EXPECT_THROW(RuntimeSet(m, std::move(runtimes)), std::logic_error);
}

TEST(ProfileRuntime, CapacityIsFloorOfSloOverCompute) {
  SimulatedCompiler compiler;
  const auto rt =
      compiler.Compile(ModelSpec::BertBase(), CompilationKind::kStatic, 512);
  const SimDuration slo = Millis(150.0);
  const RuntimeProfile p = ProfileRuntime(*rt, slo, 7);
  EXPECT_EQ(p.id, 7u);
  EXPECT_EQ(p.max_length, 512);
  EXPECT_EQ(p.compute_time, rt->ComputeTime(512));
  EXPECT_EQ(p.capacity_within_slo,
            static_cast<int>(slo / rt->ComputeTime(512)));
  EXPECT_GE(p.capacity_within_slo, 1);
}

TEST(ProfileRuntime, SmallerRuntimesHaveHigherCapacity) {
  SimulatedCompiler compiler;
  const RuntimeSet set = MakeArloRuntimeSet(compiler, ModelSpec::BertBase());
  std::vector<std::shared_ptr<const CompiledRuntime>> ptrs;
  for (std::size_t i = 0; i < set.Size(); ++i) {
    ptrs.push_back(set.RuntimePtr(static_cast<RuntimeId>(i)));
  }
  const auto profiles = ProfileRuntimeSet(ptrs, Millis(150.0));
  ASSERT_EQ(profiles.size(), 8u);
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GT(profiles[i - 1].capacity_within_slo,
              profiles[i].capacity_within_slo);
    EXPECT_LT(profiles[i - 1].compute_time, profiles[i].compute_time);
  }
}

TEST(RuntimeProfile, MeanLatencyIsLinearInWorkload) {
  RuntimeProfile p;
  p.compute_time = Millis(2.0);
  EXPECT_DOUBLE_EQ(p.MeanLatencyNs(1.0), static_cast<double>(Millis(2.0)));
  EXPECT_DOUBLE_EQ(p.MeanLatencyNs(3.0), static_cast<double>(Millis(4.0)));
}

}  // namespace
}  // namespace arlo::runtime
