#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace arlo {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(StreamingStats, KnownValues) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats whole, left, right;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    whole.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), whole.Count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.Min(), whole.Min());
  EXPECT_DOUBLE_EQ(left.Max(), whole.Max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_DOUBLE_EQ(b.Mean(), 3.0);
}

TEST(PercentileTracker, ExactQuantilesSmallSet) {
  PercentileTracker t;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) t.Add(x);
  EXPECT_DOUBLE_EQ(t.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.Quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(t.Quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(t.Quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(t.Quantile(0.125), 15.0);  // interpolated
}

TEST(PercentileTracker, MeanAndCount) {
  PercentileTracker t;
  t.Add(1.0);
  t.Add(2.0);
  t.Add(6.0);
  EXPECT_EQ(t.Count(), 3u);
  EXPECT_DOUBLE_EQ(t.Mean(), 3.0);
}

TEST(PercentileTracker, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_DOUBLE_EQ(t.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
}

TEST(PercentileTracker, InterleavedAddAndQuery) {
  PercentileTracker t;
  t.Add(5.0);
  EXPECT_DOUBLE_EQ(t.Median(), 5.0);
  t.Add(1.0);
  t.Add(9.0);
  EXPECT_DOUBLE_EQ(t.Median(), 5.0);  // re-sorts after insert
}

TEST(PercentileTracker, CdfAt) {
  PercentileTracker t;
  for (double x : {1.0, 2.0, 3.0, 4.0}) t.Add(x);
  const auto cdf = t.CdfAt({0.5, 1.0, 2.5, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.25);
  EXPECT_DOUBLE_EQ(cdf[2], 0.5);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(PercentileTracker, ClearResets) {
  PercentileTracker t;
  t.Add(1.0);
  t.Clear();
  EXPECT_EQ(t.Count(), 0u);
  EXPECT_DOUBLE_EQ(t.Quantile(0.5), 0.0);
}

TEST(TimeWindowedQuantile, EvictsOldObservations) {
  TimeWindowedQuantile w(Seconds(10.0));
  w.Add(Seconds(0.0), 100.0);
  w.Add(Seconds(5.0), 200.0);
  w.Add(Seconds(12.0), 300.0);
  // At t=14, the t=0 sample (age 14s) is out; t=5 (age 9s) and t=12 remain.
  EXPECT_EQ(w.Count(Seconds(14.0)), 2u);
  EXPECT_DOUBLE_EQ(w.Quantile(Seconds(14.0), 1.0), 300.0);
  EXPECT_DOUBLE_EQ(w.Quantile(Seconds(14.0), 0.0), 200.0);
}

TEST(TimeWindowedQuantile, EmptyWindowZero) {
  TimeWindowedQuantile w(Seconds(1.0));
  EXPECT_DOUBLE_EQ(w.Quantile(Seconds(100.0), 0.98), 0.0);
}

TEST(Summarize, ComputesLatencyStatsAndViolations) {
  std::vector<RequestRecord> records(4);
  for (int i = 0; i < 4; ++i) {
    records[i].arrival = 0;
    records[i].completion = Millis(10.0 * (i + 1));  // 10, 20, 30, 40 ms
  }
  const LatencySummary s = Summarize(records, Millis(25.0));
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 25.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 40.0);
  EXPECT_DOUBLE_EQ(s.slo_violation_frac, 0.5);  // 30 and 40 exceed 25
}

TEST(Summarize, EmptyRecords) {
  const LatencySummary s = Summarize({}, Millis(1.0));
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 0.0);
}

TEST(FormatDuration, HumanReadableUnits) {
  EXPECT_EQ(FormatDuration(Nanos(500)), "500ns");
  EXPECT_EQ(FormatDuration(Micros(12.0)), "12.00us");
  EXPECT_EQ(FormatDuration(Millis(4.86)), "4.86ms");
  EXPECT_EQ(FormatDuration(Seconds(2.5)), "2.50s");
}

}  // namespace
}  // namespace arlo
