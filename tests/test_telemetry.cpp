// Telemetry subsystem: sharded counters under contention, log-linear
// histogram bucketing, exporter formats, and — the property the whole
// design is built around — byte-identical trace output from identically
// seeded simulator runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/scenario.h"
#include "serving/testbed.h"
#include "sim/engine.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/sink.h"
#include "telemetry/trace_recorder.h"
#include "trace/twitter.h"

namespace arlo::telemetry {
namespace {

// --- counters / gauges ----------------------------------------------------

TEST(TelemetryMetrics, CounterSingleThreaded) {
  MetricsRegistry registry(Concurrency::kSingleThreaded);
  Counter* c = registry.GetCounter("c_total", "help");
  c->Add(1);
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(TelemetryMetrics, GaugeSetAndAdd) {
  MetricsRegistry registry(Concurrency::kSingleThreaded);
  Gauge* g = registry.GetGauge("g", "help");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

TEST(TelemetryMetrics, RegistryReturnsStablePointers) {
  MetricsRegistry registry(Concurrency::kSingleThreaded);
  Counter* a = registry.GetCounter("same", "");
  Counter* b = registry.GetCounter("same", "");
  EXPECT_EQ(a, b);
}

TEST(TelemetryConcurrency, ShardedCounterExactUnderContention) {
  MetricsRegistry registry(Concurrency::kMultiThreaded);
  Counter* c = registry.GetCounter("hammered_total", "");
  LatencyHistogram* h = registry.GetHistogram("hammered_ns", "");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Record(t * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Lock-free sharding must lose nothing: totals are exact, not sampled.
  EXPECT_EQ(c->Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetryConcurrency, ScrapeWhileWritingKeepsCountersMonotonic) {
  // The /metrics path: exposition snapshots taken while worker threads are
  // mid-Add must parse cleanly and never show a counter going backwards.
  MetricsRegistry registry(Concurrency::kMultiThreaded);
  Counter* c = registry.GetCounter("scraped_total", "");
  LatencyHistogram* h = registry.GetHistogram("scraped_ns", "");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Record(i);
      }
    });
  }
  std::uint64_t last_counter = 0;
  std::uint64_t last_hist_count = 0;
  for (int scrape = 0; scrape < 50; ++scrape) {
    std::ostringstream os;
    WritePrometheusText(registry, os);
    const std::string out = os.str();
    // Every sample line is `name[{labels}] value` with a numeric value.
    std::istringstream lines(out);
    std::string line;
    std::uint64_t counter = 0, hist_count = 0;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string value = line.substr(space + 1);
      if (value != "+Inf") {
        std::size_t consumed = 0;
        (void)std::stod(value, &consumed);
        ASSERT_EQ(consumed, value.size()) << line;
      }
      if (line.rfind("scraped_total ", 0) == 0) {
        counter = std::stoull(value);
      } else if (line.rfind("scraped_ns_count ", 0) == 0) {
        hist_count = std::stoull(value);
      }
    }
    EXPECT_GE(counter, last_counter);
    EXPECT_GE(hist_count, last_hist_count);
    last_counter = counter;
    last_hist_count = hist_count;
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetryConcurrency, GaugeBalancedAddsCancel) {
  MetricsRegistry registry(Concurrency::kMultiThreaded);
  Gauge* g = registry.GetGauge("depth", "");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([g] {
      for (int i = 0; i < 50000; ++i) {
        g->Add(+1);
        g->Add(-1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g->Value(), 0);
}

// --- histogram bucketing --------------------------------------------------

TEST(TelemetryHistogram, UnitBucketsAreExact) {
  // Values below 8 land in per-value unit buckets.
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST(TelemetryHistogram, OctaveBoundaries) {
  // 8 is the first value of the first log-linear octave (8 sub-buckets of
  // width 1 covering [8, 16)).
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 8);
  EXPECT_EQ(LatencyHistogram::BucketIndex(15), 15);
  EXPECT_EQ(LatencyHistogram::BucketIndex(16), 16);
  // Sub-bucket width grows with the octave; the bucket upper bound must be
  // >= the value and the previous bucket's bound must be < the value.
  for (std::int64_t v : {17ll, 100ll, 1000ll, 123456ll, 99999999ll}) {
    const int b = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(LatencyHistogram::BucketUpperBound(b), v) << v;
    if (b > 0) EXPECT_LT(LatencyHistogram::BucketUpperBound(b - 1), v) << v;
  }
}

TEST(TelemetryHistogram, HugeValuesClampToLastBucket) {
  const int last = LatencyHistogram::kNumBuckets - 1;
  EXPECT_EQ(
      LatencyHistogram::BucketIndex(std::numeric_limits<std::int64_t>::max()),
      last);
}

TEST(TelemetryHistogram, CountSumQuantile) {
  MetricsRegistry registry(Concurrency::kSingleThreaded);
  LatencyHistogram* h = registry.GetHistogram("h_ns", "");
  for (int i = 1; i <= 100; ++i) h->Record(i * 1000);
  EXPECT_EQ(h->Count(), 100u);
  EXPECT_EQ(h->Sum(), 5050u * 1000u);
  // Quantiles come back as bucket upper bounds: within one sub-bucket width
  // (1/8th) of the exact rank value.
  EXPECT_NEAR(static_cast<double>(h->Quantile(0.5)), 50000.0, 50000.0 / 8);
  EXPECT_NEAR(static_cast<double>(h->Quantile(0.98)), 99000.0, 99000.0 / 8);
  EXPECT_GE(h->Quantile(1.0), 100000u - 1);
}

TEST(TelemetryHistogram, NegativeDurationsClampToZero) {
  MetricsRegistry registry(Concurrency::kSingleThreaded);
  LatencyHistogram* h = registry.GetHistogram("h_ns", "");
  h->Record(-5);
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_EQ(h->Quantile(1.0), 0u);
}

// --- trace recorder -------------------------------------------------------

TEST(TelemetryTrace, EventsSortedByTimestampInJson) {
  TraceRecorder rec(/*run_id=*/7);
  rec.Complete("later", "cat", /*ts=*/2000, /*dur=*/500, /*tid=*/1, {});
  rec.Instant("earlier", "cat", /*ts=*/1000, /*tid=*/0, {{"k", 3}});
  std::ostringstream os;
  rec.WriteJson(os);
  const std::string out = os.str();
  EXPECT_LT(out.find("earlier"), out.find("later"));
  EXPECT_NE(out.find("\"run_id\":\"7\""), std::string::npos);
  EXPECT_NE(out.find("\"k\":3"), std::string::npos);
  // Timestamps serialize as microseconds with fixed 3-decimal precision.
  EXPECT_NE(out.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":0.500"), std::string::npos);
}

// --- exporters ------------------------------------------------------------

TEST(TelemetryExport, PrometheusGolden) {
  MetricsRegistry registry(Concurrency::kSingleThreaded);
  registry.GetCounter("arlo_requests_total", "Requests seen")->Add(3);
  registry.GetGauge("arlo_depth{level=\"2\"}", "")->Set(4);
  LatencyHistogram* h = registry.GetHistogram("arlo_lat_ns", "Latency");
  h->Record(5);
  h->Record(5);
  h->Record(100);
  std::ostringstream os;
  WritePrometheusText(registry, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# HELP arlo_requests_total Requests seen\n"
                     "# TYPE arlo_requests_total counter\n"
                     "arlo_requests_total 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("arlo_depth{level=\"2\"} 4\n"), std::string::npos) << out;
  // Histogram: cumulative occupied buckets, +Inf, sum, count.
  EXPECT_NE(out.find("arlo_lat_ns_bucket{le=\"5\"} 2\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("arlo_lat_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("arlo_lat_ns_sum 110\n"), std::string::npos) << out;
  EXPECT_NE(out.find("arlo_lat_ns_count 3\n"), std::string::npos) << out;
}

TEST(TelemetryExport, JsonSnapshotEscapesLabeledNames) {
  MetricsRegistry registry(Concurrency::kSingleThreaded);
  registry.GetGauge("arlo_queue_depth{level=\"1\"}", "")->Set(2);
  std::ostringstream os;
  WriteJsonSnapshot(registry, /*run_id=*/9, os);
  const std::string out = os.str();
  // The embedded label quotes must be escaped to keep the JSON parseable.
  EXPECT_NE(out.find("\"arlo_queue_depth{level=\\\"1\\\"}\":2"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"run_id\":\"9\""), std::string::npos);
}

TEST(TelemetryExport, CsvTimeSeries) {
  std::vector<SnapshotRow> rows(2);
  rows[0].time_s = 1.0;
  rows[0].enqueued = 10;
  rows[0].completed = 8;
  rows[0].instances = 4;
  rows[1].time_s = 2.0;
  rows[1].enqueued = 20;
  rows[1].completed = 19;
  rows[1].instances = 4;
  rows[1].e2e_p50_ms = 3.25;
  std::ostringstream os;
  WriteCsvTimeSeries(rows, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("time_s,enqueued,completed,"), std::string::npos);
  EXPECT_NE(out.find("\n1,10,8,"), std::string::npos) << out;
  EXPECT_NE(out.find("\n2,20,19,"), std::string::npos) << out;
  EXPECT_NE(out.find("3.25"), std::string::npos) << out;
}

// --- sink + engine integration -------------------------------------------

sim::EngineResult RunInstrumented(TelemetrySink* sink, std::uint64_t seed) {
  trace::TwitterTraceConfig tc;
  tc.duration_s = 4.0;
  tc.mean_rate = 300.0;
  tc.seed = seed;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  baselines::ScenarioConfig config;
  config.gpus = 4;
  config.slo = Millis(150.0);
  config.period = Seconds(2.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand =
      baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  sim::EngineConfig engine;
  engine.telemetry = sink;
  return sim::RunScenario(t, *scheme, engine);
}

TEST(TelemetrySinkTest, CountsMatchEngineResult) {
  TelemetryConfig cfg;
  cfg.run_id = 5;
  TelemetrySink sink(cfg);
  const sim::EngineResult result = RunInstrumented(&sink, /*seed=*/5);

  const ServingMetrics& m = sink.Serving();
  EXPECT_EQ(m.enqueued->Value(), result.records.size());
  EXPECT_EQ(m.completed->Value(), result.records.size());
  EXPECT_EQ(m.e2e_latency_ns->Count(), result.records.size());
  EXPECT_GT(m.launches->Value(), 0u);
  // Everything dispatched completed, so the outstanding gauge drains to 0.
  EXPECT_EQ(m.outstanding->Value(), 0);
  EXPECT_GE(sink.Tracer().Size(), 2 * result.records.size());
  // Periodic snapshots: one per second of simulated time plus the final row.
  EXPECT_GE(sink.SnapshotRows().size(), 4u);
}

TEST(TelemetrySinkTest, SeededRunsProduceByteIdenticalTraces) {
  TelemetryConfig cfg;
  cfg.run_id = 21;
  TelemetrySink a(cfg);
  TelemetrySink b(cfg);
  (void)RunInstrumented(&a, /*seed=*/21);
  (void)RunInstrumented(&b, /*seed=*/21);

  std::ostringstream ja, jb;
  a.WriteChromeTrace(ja);
  b.WriteChromeTrace(jb);
  ASSERT_GT(ja.str().size(), 100u);
  // The determinism contract: wall-clock measurements go to metrics only,
  // so the trace JSON of two identically seeded runs is byte-identical.
  EXPECT_EQ(ja.str(), jb.str());

  std::ostringstream ca, cb;
  a.WriteCsv(ca);
  b.WriteCsv(cb);
  EXPECT_EQ(ca.str(), cb.str());
}

TEST(TelemetrySinkTest, TestbedRecordsFromWorkerThreads) {
  // The wall-clock testbed records from the frontend, every worker thread,
  // and the snapshotter thread at once; under scripts/check.sh this test
  // also runs with ThreadSanitizer.
  trace::TwitterTraceConfig tc;
  tc.duration_s = 1.0;
  tc.mean_rate = 200.0;
  tc.seed = 13;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  baselines::ScenarioConfig config;
  config.gpus = 3;
  config.slo = Millis(150.0);
  config.period = Seconds(5.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand =
      baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  TelemetryConfig cfg;
  cfg.concurrency = Concurrency::kMultiThreaded;
  cfg.snapshot_period = Millis(100.0);
  TelemetrySink sink(cfg);
  serving::TestbedConfig tb;
  tb.time_scale = 0.5;  // 2x compressed replay
  tb.telemetry = &sink;
  const serving::TestbedResult result = serving::RunTestbed(t, *scheme, tb);

  const ServingMetrics& m = sink.Serving();
  EXPECT_EQ(m.completed->Value(), result.records.size());
  EXPECT_EQ(m.e2e_latency_ns->Count(), result.records.size());
  EXPECT_EQ(m.outstanding->Value(), 0);
  EXPECT_GE(sink.SnapshotRows().size(), 2u);
  // Exported output must be well-formed here too (labels, histograms).
  std::ostringstream prom;
  sink.WritePrometheus(prom);
  EXPECT_NE(prom.str().find("arlo_e2e_latency_ns_count"), std::string::npos);
}

TEST(TelemetrySinkTest, TestbedSnapshotRowsLandOnTheGrid) {
  // The testbed's snapshotter stamps rows with the *scheduled* grid time,
  // not the jittery wall-clock wake time, so testbed CSV rows line up with
  // sim rows on the same virtual-time axis.  Every row except the final
  // flush must sit exactly on a multiple of the snapshot period.
  trace::TwitterTraceConfig tc;
  tc.duration_s = 1.0;
  tc.mean_rate = 150.0;
  tc.seed = 17;
  const trace::Trace t = trace::SynthesizeTwitterTrace(tc);

  baselines::ScenarioConfig config;
  config.gpus = 2;
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand =
      baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = baselines::MakeSchemeByName("arlo", config);

  TelemetryConfig cfg;
  cfg.concurrency = Concurrency::kMultiThreaded;
  const SimDuration period = Millis(100.0);
  cfg.snapshot_period = period;
  TelemetrySink sink(cfg);
  serving::TestbedConfig tb;
  tb.telemetry = &sink;
  (void)serving::RunTestbed(t, *scheme, tb);

  const auto& rows = sink.SnapshotRows();
  ASSERT_GE(rows.size(), 3u);
  double prev = -1.0;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    const double time_s = rows[i].time_s;
    EXPECT_GT(time_s, prev);
    prev = time_s;
    // Recover the grid index and demand exact (bitwise) agreement with the
    // grid point — scheduled time, not measured time.
    const auto k = static_cast<SimTime>(
        time_s / ToSeconds(period) + 0.5);
    EXPECT_EQ(time_s, ToSeconds(k * period))
        << "row " << i << " off the snapshot grid: " << time_s;
  }
  EXPECT_GT(rows.back().time_s, prev);
}

TEST(TelemetrySinkTest, QueueDepthGaugesDrainToZero) {
  TelemetrySink sink;
  (void)RunInstrumented(&sink, /*seed=*/3);
  int labeled_gauges = 0;
  sink.Registry().ForEach([&](const std::string& name,
                              const MetricsRegistry::Entry& entry) {
    if (name.rfind("arlo_queue_depth{", 0) == 0) {
      ++labeled_gauges;
      EXPECT_EQ(entry.gauge->Value(), 0) << name;
    }
  });
  EXPECT_GT(labeled_gauges, 0);
}

}  // namespace
}  // namespace arlo::telemetry
