#include "tenant/class_table.h"
#include "tenant/dispatch_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace arlo::tenant {
namespace {

// ---------------------------------------------------------------------------
// TenantClassTable parsing.

std::string ParseError(const std::string& spec) {
  try {
    TenantClassTable::Parse(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "<no throw>";
}

constexpr const char* kGrammar =
    " (expected name:wN:sloMS[:reject|:shed], comma-separated, at most 8 "
    "classes)";

TEST(TenantClassTable, ParsesTheCanonicalThreeClassSpec) {
  const TenantClassTable table = TenantClassTable::Parse(
      "interactive:w8:slo50,batch:w2:slo500,best:w1:slo2000:shed");
  ASSERT_EQ(table.Size(), 3);
  EXPECT_FALSE(table.Empty());
  EXPECT_EQ(table.TotalWeight(), 11);

  EXPECT_EQ(table.Class(0).id, 0);
  EXPECT_EQ(table.Class(0).name, "interactive");
  EXPECT_EQ(table.Class(0).weight, 8);
  EXPECT_EQ(table.Class(0).slo, Millis(50.0));
  EXPECT_EQ(table.Class(0).shed, ShedPolicy::kReject);

  EXPECT_EQ(table.Class(1).name, "batch");
  EXPECT_EQ(table.Class(1).weight, 2);
  EXPECT_EQ(table.Class(1).slo, Millis(500.0));

  EXPECT_EQ(table.Class(2).name, "best");
  EXPECT_EQ(table.Class(2).shed, ShedPolicy::kShed);
}

TEST(TenantClassTable, DefaultTableIsEmpty) {
  const TenantClassTable table;
  EXPECT_TRUE(table.Empty());
  EXPECT_EQ(table.Size(), 0);
  EXPECT_EQ(table.TotalWeight(), 0);
}

TEST(TenantClassTable, ExplicitRejectPolicyParsesAndIsCanonicalized) {
  const TenantClassTable table = TenantClassTable::Parse("a:w1:slo10:reject");
  EXPECT_EQ(table.Class(0).shed, ShedPolicy::kReject);
  // Canonical form omits the default policy.
  EXPECT_EQ(table.ToString(), "a:w1:slo10");
}

TEST(TenantClassTable, ToStringRoundTripsThroughParse) {
  const std::string spec =
      "interactive:w8:slo50,batch:w2:slo500,best:w1:slo2000:shed";
  const TenantClassTable table = TenantClassTable::Parse(spec);
  EXPECT_EQ(table.ToString(), spec);
  EXPECT_EQ(TenantClassTable::Parse(table.ToString()).ToString(), spec);
}

TEST(TenantClassTable, FractionalSloSurvivesToString) {
  const TenantClassTable table = TenantClassTable::Parse("a:w1:slo0.5");
  EXPECT_EQ(table.Class(0).slo, Millis(0.5));
  EXPECT_EQ(table.ToString(), "a:w1:slo0.5");
}

TEST(TenantClassTable, ClampMapsUnknownIdsToClassZero) {
  const TenantClassTable table = TenantClassTable::Parse("a:w1:slo10,b:w1:slo20");
  EXPECT_EQ(table.Clamp(0), 0);
  EXPECT_EQ(table.Clamp(1), 1);
  EXPECT_EQ(table.Clamp(2), 0);
  EXPECT_EQ(table.Clamp(-1), 0);
  EXPECT_EQ(table.Class(99).name, "a");
}

TEST(TenantClassTable, FindLooksUpByName) {
  const TenantClassTable table = TenantClassTable::Parse("a:w1:slo10,b:w3:slo20");
  ASSERT_NE(table.Find("b"), nullptr);
  EXPECT_EQ(table.Find("b")->id, 1);
  EXPECT_EQ(table.Find("b")->weight, 3);
  EXPECT_EQ(table.Find("c"), nullptr);
}

TEST(TenantClassTable, EightClassesFitNineDoNot) {
  std::string spec;
  for (int i = 0; i < 8; ++i) {
    if (i > 0) spec += ',';
    spec += "c" + std::to_string(i) + ":w1:slo10";
  }
  EXPECT_EQ(TenantClassTable::Parse(spec).Size(), 8);
  const std::string nine = spec + ",c8:w1:slo10";
  EXPECT_EQ(ParseError(nine),
            "bad --tenants '" + nine + "': more than 8 classes" + kGrammar);
}

TEST(TenantClassTable, GoldenErrorMessages) {
  EXPECT_EQ(ParseError(""),
            std::string("bad --tenants '': empty spec") + kGrammar);
  EXPECT_EQ(ParseError("a:w1:slo10,"),
            std::string("bad --tenants 'a:w1:slo10,': empty class entry") +
                kGrammar);
  EXPECT_EQ(ParseError("a:w1"),
            std::string("bad --tenants 'a:w1': class 'a:w1' has 2 fields, "
                        "want 3 or 4") +
                kGrammar);
  EXPECT_EQ(ParseError("a$:w1:slo10"),
            std::string("bad --tenants 'a$:w1:slo10': bad class name 'a$'") +
                kGrammar);
  EXPECT_EQ(ParseError("a:w1:slo10,a:w2:slo20"),
            std::string("bad --tenants 'a:w1:slo10,a:w2:slo20': duplicate "
                        "class name 'a'") +
                kGrammar);
  EXPECT_EQ(ParseError("a:w0:slo10"),
            std::string("bad --tenants 'a:w0:slo10': class 'a': bad weight "
                        "field 'w0', want wN with integer N >= 1") +
                kGrammar);
  EXPECT_EQ(ParseError("a:8:slo10"),
            std::string("bad --tenants 'a:8:slo10': class 'a': bad weight "
                        "field '8', want wN with integer N >= 1") +
                kGrammar);
  EXPECT_EQ(ParseError("a:w1.5:slo10"),
            std::string("bad --tenants 'a:w1.5:slo10': class 'a': bad weight "
                        "field 'w1.5', want wN with integer N >= 1") +
                kGrammar);
  EXPECT_EQ(ParseError("a:w1:slo0"),
            std::string("bad --tenants 'a:w1:slo0': class 'a': bad slo field "
                        "'slo0', want sloMS with MS > 0") +
                kGrammar);
  EXPECT_EQ(ParseError("a:w1:50"),
            std::string("bad --tenants 'a:w1:50': class 'a': bad slo field "
                        "'50', want sloMS with MS > 0") +
                kGrammar);
  EXPECT_EQ(ParseError("a:w1:slo10:drop"),
            std::string("bad --tenants 'a:w1:slo10:drop': class 'a': bad "
                        "shed policy 'drop', want reject or shed") +
                kGrammar);
}

TEST(TenantClassTable, ShedPolicyNames) {
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kReject), "reject");
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kShed), "shed");
}

// ---------------------------------------------------------------------------
// DispatchQueue.

Request Req(RequestId id, SimTime arrival, int length, int cls = 0) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.length = length;
  r.tenant_class = cls;
  return r;
}

TEST(TenantDispatchQueue, NoTableIsPlainFifo) {
  DispatchQueue q;  // nullptr table
  EXPECT_TRUE(q.Empty());
  q.PushBack(Req(1, 0, 100));
  q.PushBack(Req(2, 0, 5, /*cls=*/3));  // class tags are ignored
  q.PushBack(Req(3, 0, 1));
  EXPECT_EQ(q.Size(), 3u);
  for (const RequestId want : {1, 2, 3}) {
    EXPECT_EQ(q.Front(/*now=*/Seconds(99.0)).id, static_cast<RequestId>(want));
    q.PopFront();
  }
  EXPECT_TRUE(q.Empty());
}

TEST(TenantDispatchQueue, EmptyTableAlsoMeansFifo) {
  const TenantClassTable empty;
  DispatchQueue q(&empty);
  EXPECT_EQ(q.Table(), nullptr);
  q.PushBack(Req(1, 0, 10, /*cls=*/5));
  q.PushBack(Req(2, 0, 10, /*cls=*/1));
  EXPECT_EQ(q.Front(0).id, 1u);
}

TEST(TenantDispatchQueue, WdrrDispatchSharesFollowWeights) {
  // Two deeply backlogged classes, equal SLOs and lengths: long-run
  // dispatch counts must converge to the 3:1 weight ratio.
  const TenantClassTable table =
      TenantClassTable::Parse("a:w3:slo100,b:w1:slo100");
  DispatchQueue q(&table);
  for (int i = 0; i < 32; ++i) {
    q.PushBack(Req(static_cast<RequestId>(100 + i), i, 128, 0));
    q.PushBack(Req(static_cast<RequestId>(200 + i), i, 128, 1));
  }
  int a = 0;
  int b = 0;
  for (int i = 0; i < 16; ++i) {
    const Request& r = q.Front(/*now=*/0);
    (r.id < 200 ? a : b)++;
    q.PopFront();
  }
  EXPECT_EQ(a, 12);
  EXPECT_EQ(b, 4);
}

TEST(TenantDispatchQueue, OnTimeHeadsGoInLeastSlackOrder) {
  // Both heads afford and can still make their SLO: the tighter deadline
  // wins regardless of class order.
  const TenantClassTable table =
      TenantClassTable::Parse("lax:w1:slo1000,tight:w1:slo10");
  DispatchQueue q(&table);
  q.PushBack(Req(1, 0, 64, 0));
  q.PushBack(Req(2, 0, 64, 1));
  EXPECT_EQ(q.Front(/*now=*/0).id, 2u);  // slack 10ms < 1000ms
  q.PopFront();
  EXPECT_EQ(q.Front(/*now=*/0).id, 1u);
}

TEST(TenantDispatchQueue, LateHeadsYieldToOnTimeHeads) {
  // A head that has already missed its SLO has no meaningful deadline; it
  // must not outrank a head that can still make its own.
  const TenantClassTable table =
      TenantClassTable::Parse("a:w1:slo50,b:w1:slo500");
  DispatchQueue q(&table);
  q.PushBack(Req(1, 0, 64, 0));            // late at now=100ms (slack -50ms)
  q.PushBack(Req(2, Millis(90.0), 64, 1));  // slack +490ms
  EXPECT_EQ(q.Front(Millis(100.0)).id, 2u);
}

TEST(TenantDispatchQueue, AllLateFallsBackToClassPriorityOrder) {
  const TenantClassTable table =
      TenantClassTable::Parse("a:w1:slo50,b:w1:slo500");
  DispatchQueue q(&table);
  q.PushBack(Req(1, 0, 64, 0));  // slack -950ms at now=1s
  q.PushBack(Req(2, 0, 64, 1));  // slack -500ms: "less late", still late
  EXPECT_EQ(q.Front(Seconds(1.0)).id, 1u);  // class 0 first
}

TEST(TenantDispatchQueue, FrontIsPinnedUntilTheQueueChanges) {
  const TenantClassTable table =
      TenantClassTable::Parse("a:w1:slo50,b:w1:slo500");
  DispatchQueue q(&table);
  q.PushBack(Req(1, 0, 64, 0));
  q.PushBack(Req(2, 0, 64, 1));
  EXPECT_EQ(q.Front(0).id, 1u);  // slack 50ms < 500ms
  // Selected once, the choice holds even as `now` moves past id 1's SLO.
  EXPECT_EQ(q.Front(Millis(100.0)).id, 1u);
  // Any mutation re-selects: id 1 is now late, so the on-time b head wins.
  q.PushBack(Req(3, Millis(100.0), 64, 1));
  EXPECT_EQ(q.Front(Millis(100.0)).id, 2u);
}

TEST(TenantDispatchQueue, UnknownClassesClampToClassZero) {
  const TenantClassTable table = TenantClassTable::Parse("a:w1:slo10");
  DispatchQueue q(&table);
  q.PushBack(Req(1, 0, 64, /*cls=*/7));
  EXPECT_EQ(q.ClassDepth(0), 1u);
  EXPECT_EQ(q.ClassDepth(7), 0u);
}

TEST(TenantDispatchQueue, ClassDepthTracksPerClassBacklog) {
  const TenantClassTable table =
      TenantClassTable::Parse("a:w1:slo100,b:w1:slo100");
  DispatchQueue q(&table);
  q.PushBack(Req(1, 0, 64, 0));
  q.PushBack(Req(2, 0, 64, 1));
  q.PushBack(Req(3, 0, 64, 1));
  EXPECT_EQ(q.ClassDepth(0), 1u);
  EXPECT_EQ(q.ClassDepth(1), 2u);
  EXPECT_EQ(q.ClassDepth(-1), 0u);
  EXPECT_EQ(q.ClassDepth(2), 0u);
  EXPECT_EQ(q.Size(), 3u);
}

TEST(TenantDispatchQueue, RemoveIfVisitsClassesInIdOrderThenFifo) {
  const TenantClassTable table =
      TenantClassTable::Parse("a:w1:slo100,b:w1:slo100");
  DispatchQueue q(&table);
  q.PushBack(Req(10, 0, 64, 1));
  q.PushBack(Req(11, 0, 64, 0));
  q.PushBack(Req(12, 1, 64, 1));
  q.PushBack(Req(13, 1, 64, 0));
  std::vector<RequestId> visited;
  q.RemoveIf([&](const Request& r) {
    visited.push_back(r.id);
    return r.id % 2 == 0;  // removes 10 and 12
  });
  EXPECT_EQ(visited, (std::vector<RequestId>{11, 13, 10, 12}));
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.ClassDepth(0), 2u);
  EXPECT_EQ(q.ClassDepth(1), 0u);
}

TEST(TenantDispatchQueue, SingleClassRemoveIfIsTheHistoricalSweep) {
  DispatchQueue q;
  for (RequestId id = 1; id <= 4; ++id) q.PushBack(Req(id, 0, 64));
  std::vector<RequestId> visited;
  q.RemoveIf([&](const Request& r) {
    visited.push_back(r.id);
    return r.id == 2;
  });
  EXPECT_EQ(visited, (std::vector<RequestId>{1, 2, 3, 4}));
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.Front(0).id, 1u);
}

}  // namespace
}  // namespace arlo::tenant
