#include "serving/testbed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/scenario.h"
#include "fault/fault_plan.h"
#include "sim/engine.h"
#include "trace/twitter.h"

namespace arlo::serving {
namespace {

using baselines::MakeSchemeByName;
using baselines::ScenarioConfig;

trace::Trace TinyTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

TEST(Testbed, ServesAllRequestsOnRealThreads) {
  ScenarioConfig config;
  config.gpus = 2;
  auto scheme = MakeSchemeByName("st", config);
  const trace::Trace t = TinyTrace(60.0, 2.0, 1);
  TestbedConfig tb;
  tb.time_scale = 0.5;  // run 2x compressed
  const TestbedResult result = RunTestbed(t, *scheme, tb);
  ASSERT_EQ(result.records.size(), t.Size());
  EXPECT_EQ(result.peak_workers, 2);
  for (const auto& r : result.records) {
    EXPECT_GE(r.dispatch, r.arrival - Millis(2.0));  // timer slop
    EXPECT_GT(r.completion, r.start);
    // Service time must be at least the modeled compute + overhead.
    EXPECT_GE(r.ServiceTime(), Millis(0.8));
  }
}

TEST(Testbed, LatenciesTrackTheModeledCompute) {
  ScenarioConfig config;
  config.gpus = 2;
  auto scheme = MakeSchemeByName("st", config);
  const trace::Trace t = TinyTrace(30.0, 1.5, 2);
  const TestbedResult result = RunTestbed(t, *scheme, TestbedConfig{});
  // ST pads to 512: service ≈ 4.86 ms + 0.8 ms overhead.  Wall-clock waits
  // can only overshoot (OS scheduling), never undershoot; on a contended
  // single-core host the overshoot can reach several ms, so bound the
  // median rather than each sample.
  PercentileTracker service_ms;
  for (const auto& r : result.records) {
    EXPECT_GE(ToMillis(r.ServiceTime()), 5.60);
    service_ms.Add(ToMillis(r.ServiceTime()));
  }
  EXPECT_LT(service_ms.Median(), 9.0);
}

TEST(Testbed, ArloSchemeRunsOnThreads) {
  ScenarioConfig config;
  config.gpus = 3;
  config.period = Seconds(1.0);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  const trace::Trace t = TinyTrace(80.0, 2.0, 3);
  config.initial_demand =
      baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = MakeSchemeByName("arlo", config);
  TestbedConfig tb;
  tb.time_scale = 0.5;
  const TestbedResult result = RunTestbed(t, *scheme, tb);
  EXPECT_EQ(result.records.size(), t.Size());
}

TEST(Testbed, SurvivesReplacementChurnUnderLoad) {
  // Aggressive re-allocation (0.5 s periods) while requests stream in:
  // exercises the retire/relaunch/re-dispatch path on real threads — the
  // lock-ordering and lifetime contract between workers and dispatcher.
  ScenarioConfig config;
  config.gpus = 4;
  config.period = Millis(500.0);
  auto scheme = MakeSchemeByName("arlo", config);  // cold start: must
                                                   // re-allocate repeatedly
  const trace::Trace t = TinyTrace(250.0, 3.0, 9);
  TestbedConfig tb;
  tb.time_scale = 0.5;
  const TestbedResult result = RunTestbed(t, *scheme, tb);
  ASSERT_EQ(result.records.size(), t.Size());
  // The pool never exceeds GPUs + in-flight replacements.
  EXPECT_GE(result.peak_workers, 4);
  EXPECT_LE(result.peak_workers, 8);
  for (const auto& r : result.records) {
    EXPECT_GE(r.dispatch, r.arrival - Millis(4.0));  // timer slop
    EXPECT_GT(r.completion, r.start);
  }
}

// Fault hammer: a plan kills three of five workers mid-run (one while the
// cluster is also absorbing transient dispatch errors), hangs another, and
// the run must still complete every request exactly once — no request lost
// off a dead worker's queue, none double-completed, and the scheme's
// replacement workers absorb the churn.  This is the testbed counterpart of
// the simulator's FaultPlanSim coverage and runs under TSan in check.sh.
TEST(Testbed, SurvivesWorkerKillsAndHangsUnderLoad) {
  ScenarioConfig config;
  config.gpus = 5;
  config.period = Seconds(1.0);
  const trace::Trace t = TinyTrace(250.0, 3.0, 11);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand =
      baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = MakeSchemeByName("arlo", config);

  fault::FaultPlan plan;
  plan.seed = 3;
  plan.dispatch_error_prob = 0.02;
  // The hang fires before the first re-allocation period so worker 3 is
  // still serving under its initial id.
  plan.HangAt(Seconds(0.5), 3, Millis(300.0))
      .CrashAt(Seconds(0.8), 0)
      .CrashAt(Seconds(1.4), 1)
      .CrashAt(Seconds(2.0), 2);

  TestbedConfig tb;
  tb.time_scale = 0.5;
  tb.fault_plan = &plan;
  const TestbedResult result = RunTestbed(t, *scheme, tb);

  ASSERT_EQ(result.records.size(), t.Size());
  std::vector<int> count(t.Size(), 0);
  for (const auto& r : result.records) ++count[r.id];
  for (std::size_t id = 0; id < count.size(); ++id) {
    EXPECT_EQ(count[id], 1) << "request " << id;
  }
  // The early crashes and the hang land for sure; the t=2.0 crash can race
  // a periodic retirement of its target, so allow 2 or 3.
  EXPECT_GE(result.injected_failures, 2);
  EXPECT_LE(result.injected_failures, 3);
  EXPECT_GE(result.faults_injected, 3u);  // crashes + the hang
  EXPECT_GT(result.retries, 0u);
  // Replacements were launched for the dead workers.
  EXPECT_GE(result.peak_workers, 5);
  for (const auto& r : result.records) {
    EXPECT_GE(r.dispatch, r.arrival - Millis(4.0));  // timer slop
    EXPECT_GT(r.completion, r.start);
  }
}

// Hang detection on real threads: a worker frozen far past the timeout
// while holding work is reaped and its requests finish elsewhere.
TEST(Testbed, HangDetectionReapsAFrozenWorker) {
  ScenarioConfig config;
  config.gpus = 3;
  config.period = Seconds(30.0);  // no periodic churn: isolate the reap
  const trace::Trace t = TinyTrace(150.0, 2.0, 12);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand =
      baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = MakeSchemeByName("arlo", config);

  fault::FaultPlan plan;
  plan.HangAt(Seconds(0.8), 0, Seconds(30.0));  // would outlast the run

  TestbedConfig tb;
  tb.time_scale = 0.5;
  tb.fault_plan = &plan;
  tb.resilience.hang_timeout = Millis(250.0);
  const TestbedResult result = RunTestbed(t, *scheme, tb);
  ASSERT_EQ(result.records.size(), t.Size());
  EXPECT_EQ(result.injected_failures, 1);  // the reap
  EXPECT_GT(result.requeues, 0u);
}

// §5.2.1 in miniature: simulator and testbed agree on mean latency for a
// light trace (loose tolerance here; the calibration bench reports the
// precise deltas).
TEST(Testbed, AgreesWithSimulatorOnLightTraffic) {
  const trace::Trace t = TinyTrace(50.0, 2.0, 4);
  ScenarioConfig config;
  config.gpus = 2;

  auto sim_scheme = MakeSchemeByName("st", config);
  const sim::EngineResult sim_result = sim::RunScenario(t, *sim_scheme);
  const double sim_mean = Summarize(sim_result.records, config.slo).mean_ms;

  // A shared host can stall any single wall-clock run for several ms; take
  // the least-perturbed of two runs (cf. the calibration bench).
  double tb_mean = 0.0;
  for (int run = 0; run < 2; ++run) {
    auto tb_scheme = MakeSchemeByName("st", config);
    const TestbedResult tb_result =
        RunTestbed(t, *tb_scheme, TestbedConfig{});
    const double mean = Summarize(tb_result.records, config.slo).mean_ms;
    tb_mean = run == 0 ? mean : std::min(tb_mean, mean);
  }

  EXPECT_NEAR(tb_mean, sim_mean, 0.30 * sim_mean + 0.5);
}

}  // namespace
}  // namespace arlo::serving
