// LiveTestbed dynamic batching: batch formation on real worker threads,
// waiting policies interruptible by faults and shutdown, and zero request
// loss when a kill lands mid-batch.  Runs under TSan and ASan in check.sh
// (filter TestbedBatching.*).
#include <gtest/gtest.h>

#include <vector>

#include "baselines/scenario.h"
#include "batch/policy.h"
#include "fault/fault_plan.h"
#include "serving/testbed.h"
#include "trace/twitter.h"

namespace arlo::serving {
namespace {

using baselines::MakeSchemeByName;
using baselines::ScenarioConfig;

trace::Trace TinyTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

void ExpectServedExactlyOnce(const TestbedResult& result,
                             const trace::Trace& t) {
  ASSERT_EQ(result.records.size(), t.Size());
  std::vector<int> count(t.Size(), 0);
  for (const auto& r : result.records) ++count[r.id];
  for (std::size_t id = 0; id < count.size(); ++id) {
    EXPECT_EQ(count[id], 1) << "request " << id;
  }
}

TEST(TestbedBatching, FormsBatchesAndServesAll) {
  ScenarioConfig config;
  config.gpus = 2;
  config.max_batch = 4;
  auto scheme = MakeSchemeByName("st", config);
  // Past the unbatched 2-worker ST capacity, so queues actually deepen and
  // greedy formation has something to take.
  const trace::Trace t = TinyTrace(400.0, 1.5, 21);
  TestbedConfig tb;
  tb.time_scale = 0.5;
  tb.max_batch = 4;
  const TestbedResult result = RunTestbed(t, *scheme, tb);
  ExpectServedExactlyOnce(result, t);
  EXPECT_GT(result.batches_formed, 0u);
  // Real batches formed: strictly fewer launches than requests…
  EXPECT_LT(result.batches_formed, result.records.size());
  // …but no launch carried more than max_batch.
  EXPECT_GE(result.batches_formed * 4, result.records.size());
  EXPECT_EQ(result.batch_timeouts, 0u);  // greedy never waits
}

TEST(TestbedBatching, SloPolicyWaitsAndStillDrains) {
  ScenarioConfig config;
  config.gpus = 2;
  config.max_batch = 4;
  auto scheme = MakeSchemeByName("st", config);
  const trace::Trace t = TinyTrace(200.0, 1.5, 22);
  batch::BatchPolicyConfig bpc;
  bpc.slo = Millis(150.0);
  const auto policy = batch::MakeBatchPolicy("slo", bpc);
  TestbedConfig tb;
  tb.time_scale = 0.5;
  tb.max_batch = 4;
  tb.batch_policy = policy.get();
  const TestbedResult result = RunTestbed(t, *scheme, tb);
  // The wait budget is bounded, so Finish() drains everything — including
  // the tail where no further arrivals will ever fill a batch.
  ExpectServedExactlyOnce(result, t);
  EXPECT_GT(result.batches_formed, 0u);
  EXPECT_LT(result.batches_formed, result.records.size());
}

// The acceptance hammer: batch formation + fault-supervisor kills + drain,
// zero request loss.  A kill must interrupt a worker mid-formation-wait
// (its queue is stolen and requeued) and mid-batch (the worker requeues the
// whole in-flight batch itself), and every request still completes once.
TEST(TestbedBatching, SurvivesKillAndDrainsWithZeroLoss) {
  ScenarioConfig config;
  config.gpus = 3;
  config.max_batch = 4;
  config.period = Seconds(1.0);
  const trace::Trace t = TinyTrace(250.0, 2.0, 23);
  auto runtimes = baselines::MakeRuntimeSetFor(config);
  config.initial_demand =
      baselines::DemandFromTrace(t, *runtimes, config.slo);
  auto scheme = MakeSchemeByName("arlo", config);

  batch::BatchPolicyConfig bpc;
  bpc.slo = Millis(150.0);
  const auto policy = batch::MakeBatchPolicy("slo", bpc);

  fault::FaultPlan plan;
  plan.seed = 5;
  plan.CrashAt(Seconds(0.6), 0).CrashAt(Seconds(1.2), 1);

  TestbedConfig tb;
  tb.time_scale = 0.5;
  tb.max_batch = 4;
  tb.batch_policy = policy.get();
  tb.fault_plan = &plan;
  const TestbedResult result = RunTestbed(t, *scheme, tb);

  ExpectServedExactlyOnce(result, t);
  EXPECT_GE(result.injected_failures, 1);
  EXPECT_GT(result.batches_formed, 0u);
  for (const auto& r : result.records) {
    EXPECT_GT(r.completion, r.start);
  }
}

}  // namespace
}  // namespace arlo::serving
