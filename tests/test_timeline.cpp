#include "sim/timeline.h"

#include <gtest/gtest.h>

#include "sim/report.h"

namespace arlo::sim {
namespace {

TEST(PaddingWasteOfRun, StaticPadsDynamicDoesNot) {
  const runtime::ModelSpec model = runtime::ModelSpec::BertBase();
  std::vector<RequestRecord> records(2);
  records[0].length = 64;
  records[0].runtime = 0;
  records[1].length = 64;
  records[1].runtime = 0;
  // Static 512 runtime: useful flops(64), computed flops(512).
  const double waste_static = PaddingWasteOfRun(records, model, {512});
  EXPECT_NEAR(waste_static, 1.0 - model.Flops(64) / model.Flops(512), 1e-12);
  // Dynamic runtime (0): no padding at all.
  EXPECT_DOUBLE_EQ(PaddingWasteOfRun(records, model, {0}), 0.0);
  // Exact-fit static runtime: no waste.
  EXPECT_DOUBLE_EQ(PaddingWasteOfRun(records, model, {64}), 0.0);
}

TEST(PaddingWasteOfRun, EmptyRunIsZero) {
  EXPECT_DOUBLE_EQ(
      PaddingWasteOfRun({}, runtime::ModelSpec::BertBase(), {512}), 0.0);
}

RequestRecord MakeRecord(double arrival_s, double completion_s) {
  RequestRecord r;
  r.arrival = Seconds(arrival_s);
  r.completion = Seconds(completion_s);
  return r;
}

TEST(TimelineRecorder, BucketsArrivalsAndCompletions) {
  TimelineRecorder rec(Seconds(1.0));
  rec.RecordArrival(Seconds(0.2));
  rec.RecordArrival(Seconds(0.9));
  rec.RecordArrival(Seconds(1.1));
  rec.RecordCompletion(MakeRecord(0.2, 0.5));
  rec.RecordCompletion(MakeRecord(0.9, 2.5));
  rec.Finish(Seconds(3.0));
  const auto buckets = rec.Buckets();
  ASSERT_GE(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].arrivals, 2u);
  EXPECT_EQ(buckets[1].arrivals, 1u);
  EXPECT_EQ(buckets[0].completions, 1u);
  EXPECT_EQ(buckets[2].completions, 1u);
  EXPECT_NEAR(buckets[0].mean_latency_ms, 300.0, 1e-9);
  EXPECT_NEAR(buckets[2].mean_latency_ms, 1600.0, 1e-9);
}

TEST(TimelineRecorder, GpuTimeIntegralSpansBuckets) {
  TimelineRecorder rec(Seconds(1.0));
  rec.RecordGpuCount(0, 2);
  rec.RecordGpuCount(Seconds(1.5), 4);  // 2 GPUs for 1.5 s, then 4
  rec.Finish(Seconds(3.0));
  const auto buckets = rec.Buckets();
  ASSERT_GE(buckets.size(), 3u);
  EXPECT_NEAR(buckets[0].mean_gpus, 2.0, 1e-9);
  EXPECT_NEAR(buckets[1].mean_gpus, 3.0, 1e-9);  // half at 2, half at 4
  EXPECT_NEAR(buckets[2].mean_gpus, 4.0, 1e-9);
}

TEST(TimelineRecorder, PeakOutstanding) {
  TimelineRecorder rec(Seconds(1.0));
  rec.RecordOutstanding(Seconds(0.1), 3);
  rec.RecordOutstanding(Seconds(0.2), 7);
  rec.RecordOutstanding(Seconds(0.3), 5);
  rec.Finish(Seconds(1.0));
  EXPECT_EQ(rec.Buckets()[0].peak_outstanding, 7);
}

TEST(TimelineRecorder, EmptyBucketsAreZero) {
  TimelineRecorder rec(Seconds(1.0));
  rec.RecordArrival(Seconds(2.5));
  rec.Finish(Seconds(3.0));
  const auto buckets = rec.Buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].arrivals, 0u);
  EXPECT_DOUBLE_EQ(buckets[0].mean_latency_ms, 0.0);
  EXPECT_EQ(buckets[2].arrivals, 1u);
}

TEST(TimelineRecorder, CustomBucketWidth) {
  TimelineRecorder rec(Seconds(5.0));
  rec.RecordArrival(Seconds(4.9));
  rec.RecordArrival(Seconds(5.1));
  rec.Finish(Seconds(10.0));
  const auto buckets = rec.Buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].arrivals, 1u);
  EXPECT_EQ(buckets[1].arrivals, 1u);
  EXPECT_DOUBLE_EQ(buckets[1].t_seconds, 5.0);
}

TEST(TimelineRecorder, IntegratesWithEngineConfig) {
  // Smoke: the engine wires arrivals/completions/gpu counts through.
  // (Full engine coverage lives in test_engine.cpp; this checks the hook.)
  TimelineRecorder rec(Seconds(1.0));
  rec.RecordGpuCount(0, 1);
  rec.RecordArrival(Seconds(0.5));
  rec.RecordCompletion(MakeRecord(0.5, 0.6));
  rec.Finish(Seconds(1.0));
  const auto buckets = rec.Buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].arrivals, 1u);
  EXPECT_EQ(buckets[0].completions, 1u);
  EXPECT_NEAR(buckets[0].mean_gpus, 1.0, 1e-9);
}

}  // namespace
}  // namespace arlo::sim
