#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace arlo::trace {
namespace {

std::vector<Request> MakeRequests() {
  return {
      {0, Seconds(2.0), 30},
      {0, Seconds(1.0), 10},
      {0, Seconds(3.0), 50},
  };
}

TEST(Trace, SortsByArrivalAndAssignsIds) {
  Trace t(MakeRequests());
  ASSERT_EQ(t.Size(), 3u);
  EXPECT_EQ(t.Requests()[0].length, 10);
  EXPECT_EQ(t.Requests()[1].length, 30);
  EXPECT_EQ(t.Requests()[2].length, 50);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t.Requests()[i].id, i);
  }
}

TEST(Trace, DurationAndMeanRate) {
  Trace t(MakeRequests());
  EXPECT_EQ(t.Duration(), Seconds(3.0));
  EXPECT_NEAR(t.MeanRate(), 1.0, 1e-9);
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.Empty());
  EXPECT_EQ(t.Duration(), 0);
  EXPECT_DOUBLE_EQ(t.MeanRate(), 0.0);
}

TEST(Trace, RejectsNonPositiveLengths) {
  EXPECT_THROW(Trace({{0, 0, 0}}), std::logic_error);
}

TEST(Trace, LengthHistogram) {
  Trace t(MakeRequests());
  Histogram h = t.LengthHistogram(100);
  EXPECT_EQ(h.Total(), 3u);
  EXPECT_EQ(h.CountAt(30), 1u);
}

TEST(Trace, SliceKeepsWindowAndOriginalTimes) {
  Trace t(MakeRequests());
  Trace s = t.Slice(Seconds(1.5), Seconds(3.0));
  ASSERT_EQ(s.Size(), 1u);
  EXPECT_EQ(s.Requests()[0].arrival, Seconds(2.0));
  EXPECT_EQ(s.Requests()[0].length, 30);
}

TEST(Trace, AppendShiftsSecondTrace) {
  Trace a(MakeRequests());
  Trace b({{0, Seconds(0.5), 99}});
  a.Append(b, Seconds(1.0));
  ASSERT_EQ(a.Size(), 4u);
  EXPECT_EQ(a.Requests().back().arrival, Seconds(4.5));
  EXPECT_EQ(a.Requests().back().length, 99);
  EXPECT_EQ(a.Requests().back().id, 3u);
}

TEST(Trace, CsvRoundTrip) {
  Trace t(MakeRequests());
  std::stringstream ss;
  t.SaveCsv(ss);
  Trace loaded = Trace::LoadCsv(ss);
  ASSERT_EQ(loaded.Size(), t.Size());
  for (std::size_t i = 0; i < t.Size(); ++i) {
    EXPECT_EQ(loaded.Requests()[i].arrival, t.Requests()[i].arrival);
    EXPECT_EQ(loaded.Requests()[i].length, t.Requests()[i].length);
  }
}

TEST(Trace, LoadCsvRejectsGarbage) {
  std::stringstream ss("id,arrival_ns,length\nnot-a-number\n");
  EXPECT_THROW(Trace::LoadCsv(ss), std::logic_error);
}

TEST(Trace, LoadsThreeColumnFixture) {
  // The historical single-tenant one-shot shape.
  std::stringstream ss("id,arrival_ns,length\n0,1000,64\n1,2000,128\n");
  const Trace t = Trace::LoadCsv(ss);
  ASSERT_EQ(t.Size(), 2u);
  EXPECT_EQ(t.Requests()[1].length, 128);
  EXPECT_EQ(t.Requests()[1].decode_len, 0);
  EXPECT_EQ(t.Requests()[1].tenant_class, 0);
  EXPECT_FALSE(t.IsGenerative());
  EXPECT_FALSE(t.IsMultiTenant());
}

TEST(Trace, LoadsFourColumnFixture) {
  std::stringstream ss(
      "id,arrival_ns,length,decode_len\n0,1000,64,16\n1,2000,128,0\n");
  const Trace t = Trace::LoadCsv(ss);
  ASSERT_EQ(t.Size(), 2u);
  EXPECT_EQ(t.Requests()[0].decode_len, 16);
  EXPECT_EQ(t.Requests()[0].tenant_class, 0);
  EXPECT_TRUE(t.IsGenerative());
  EXPECT_FALSE(t.IsMultiTenant());
}

TEST(Trace, LoadsFiveColumnFixture) {
  std::stringstream ss(
      "id,arrival_ns,length,decode_len,class\n"
      "0,1000,64,0,2\n1,2000,128,16,0\n");
  const Trace t = Trace::LoadCsv(ss);
  ASSERT_EQ(t.Size(), 2u);
  EXPECT_EQ(t.Requests()[0].tenant_class, 2);
  EXPECT_EQ(t.Requests()[1].tenant_class, 0);
  EXPECT_TRUE(t.IsMultiTenant());
}

TEST(Trace, MultiTenantCsvRoundTripsWithFiveColumns) {
  std::vector<Request> requests;
  requests.push_back({0, Seconds(1.0), 64});
  Request tagged{0, Seconds(2.0), 128};
  tagged.tenant_class = 3;
  requests.push_back(tagged);
  Trace t(std::move(requests));
  ASSERT_TRUE(t.IsMultiTenant());

  std::stringstream ss;
  t.SaveCsv(ss);
  // One-shot multi-tenant traces still emit decode_len so `class` is
  // always the fifth column.
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "id,arrival_ns,length,decode_len,class");
  ss.seekg(0);
  const Trace loaded = Trace::LoadCsv(ss);
  ASSERT_EQ(loaded.Size(), 2u);
  EXPECT_EQ(loaded.Requests()[1].tenant_class, 3);
  EXPECT_EQ(loaded.Requests()[1].decode_len, 0);
}

TEST(Trace, SingleTenantCsvShapeIsUnchanged) {
  // Byte-compat guard: a trace with no tenant tags and no decode lengths
  // must keep the historical 3-column shape exactly.
  Trace t(MakeRequests());
  std::stringstream ss;
  t.SaveCsv(ss);
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "id,arrival_ns,length");
}

TEST(Trace, LoadCsvGoldenErrorsForBadWidths) {
  {
    std::stringstream ss("id,arrival_ns,length\n1,2\n");
    try {
      Trace::LoadCsv(ss);
      FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(e.what(),
                   "trace CSV: line '1,2' has 2 columns, want 3, 4, or 5");
    }
  }
  {
    std::stringstream ss("0,1000,64,0,1,9\n");
    try {
      Trace::LoadCsv(ss);
      FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(
          e.what(),
          "trace CSV: line '0,1000,64,0,1,9' has 6 columns, want 3, 4, or 5");
    }
  }
}

TEST(Trace, LoadCsvGoldenErrorForMixedWidths) {
  std::stringstream ss("0,1000,64\n1,2000,128,16\n");
  try {
    Trace::LoadCsv(ss);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "trace CSV: mixed column widths: line '1,2000,128,16' has 4 "
                 "columns, file started with 3");
  }
}

TEST(Trace, LoadCsvRejectsNegativeClass) {
  std::stringstream ss("0,1000,64,0,-1\n");
  EXPECT_THROW(Trace::LoadCsv(ss), std::logic_error);
}

}  // namespace
}  // namespace arlo::trace
