#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace arlo::trace {
namespace {

std::vector<Request> MakeRequests() {
  return {
      {0, Seconds(2.0), 30},
      {0, Seconds(1.0), 10},
      {0, Seconds(3.0), 50},
  };
}

TEST(Trace, SortsByArrivalAndAssignsIds) {
  Trace t(MakeRequests());
  ASSERT_EQ(t.Size(), 3u);
  EXPECT_EQ(t.Requests()[0].length, 10);
  EXPECT_EQ(t.Requests()[1].length, 30);
  EXPECT_EQ(t.Requests()[2].length, 50);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t.Requests()[i].id, i);
  }
}

TEST(Trace, DurationAndMeanRate) {
  Trace t(MakeRequests());
  EXPECT_EQ(t.Duration(), Seconds(3.0));
  EXPECT_NEAR(t.MeanRate(), 1.0, 1e-9);
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.Empty());
  EXPECT_EQ(t.Duration(), 0);
  EXPECT_DOUBLE_EQ(t.MeanRate(), 0.0);
}

TEST(Trace, RejectsNonPositiveLengths) {
  EXPECT_THROW(Trace({{0, 0, 0}}), std::logic_error);
}

TEST(Trace, LengthHistogram) {
  Trace t(MakeRequests());
  Histogram h = t.LengthHistogram(100);
  EXPECT_EQ(h.Total(), 3u);
  EXPECT_EQ(h.CountAt(30), 1u);
}

TEST(Trace, SliceKeepsWindowAndOriginalTimes) {
  Trace t(MakeRequests());
  Trace s = t.Slice(Seconds(1.5), Seconds(3.0));
  ASSERT_EQ(s.Size(), 1u);
  EXPECT_EQ(s.Requests()[0].arrival, Seconds(2.0));
  EXPECT_EQ(s.Requests()[0].length, 30);
}

TEST(Trace, AppendShiftsSecondTrace) {
  Trace a(MakeRequests());
  Trace b({{0, Seconds(0.5), 99}});
  a.Append(b, Seconds(1.0));
  ASSERT_EQ(a.Size(), 4u);
  EXPECT_EQ(a.Requests().back().arrival, Seconds(4.5));
  EXPECT_EQ(a.Requests().back().length, 99);
  EXPECT_EQ(a.Requests().back().id, 3u);
}

TEST(Trace, CsvRoundTrip) {
  Trace t(MakeRequests());
  std::stringstream ss;
  t.SaveCsv(ss);
  Trace loaded = Trace::LoadCsv(ss);
  ASSERT_EQ(loaded.Size(), t.Size());
  for (std::size_t i = 0; i < t.Size(); ++i) {
    EXPECT_EQ(loaded.Requests()[i].arrival, t.Requests()[i].arrival);
    EXPECT_EQ(loaded.Requests()[i].length, t.Requests()[i].length);
  }
}

TEST(Trace, LoadCsvRejectsGarbage) {
  std::stringstream ss("id,arrival_ns,length\nnot-a-number\n");
  EXPECT_THROW(Trace::LoadCsv(ss), std::logic_error);
}

}  // namespace
}  // namespace arlo::trace
