// Cross-hop distributed tracing (docs/OBSERVABILITY.md):
//
//   TraceWire    — protocol v5 reply annex round-trips, back-compat with
//                  annex-less replies, strict rejection of malformed
//                  annexes, and fuzz over annexed streams
//   TraceStages  — stage naming/sampling invariants, the arlo_stage_*
//                  histogram family, the stage summary JSON, nested Chrome
//                  spans, and the arlo_trace_dropped_total counter
//   TraceCluster — integration over 127.0.0.1: annexes survive the router
//                  hop, timelines cover every hop exactly once, and the
//                  assembled spans sum to the client-observed latency
//   TraceProbe   — ProbeAdminEndpoint's statusz parsing rejects truncated
//                  or malformed payloads atomically
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "baselines/scenario.h"
#include "cluster/router.h"
#include "common/cli.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/probe.h"
#include "serving/live_testbed.h"
#include "telemetry/sink.h"
#include "telemetry/stages.h"
#include "trace/twitter.h"

namespace arlo {
namespace {

using telemetry::Stage;
using telemetry::StageSpan;

// ---------------------------------------------------------------- TraceWire

net::Frame DecodeOne(const std::vector<std::uint8_t>& bytes) {
  net::FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  net::Frame frame;
  EXPECT_EQ(decoder.Next(frame), net::FrameDecoder::Result::kFrame);
  EXPECT_EQ(decoder.Pending(), 0u);
  return frame;
}

TEST(TraceWire, ReplyAnnexRoundTrips) {
  net::Reply msg;
  msg.id = 7;
  msg.request_id = 0xabcdef01u;
  msg.status = net::ReplyStatus::kOk;
  msg.queue_ns = 1000;
  msg.service_ns = 2000;
  msg.annex = {{Stage::kAccept, 120},
               {Stage::kAdmission, 80},
               {Stage::kQueue, 500000},
               {Stage::kBatch, 40000},
               {Stage::kPrefill, 3200000},
               {Stage::kDecode, 0},
               {Stage::kReplyWrite, 900}};

  std::vector<std::uint8_t> bytes;
  EncodeReply(msg, bytes);
  // base frame + count byte + 9 bytes per span
  ASSERT_EQ(bytes.size(), net::kReplyFrameBytes + 1 + msg.annex.size() * 9);

  const net::Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, net::MsgType::kReply);
  EXPECT_EQ(frame.reply, msg);
  EXPECT_EQ(frame.reply.annex, msg.annex);
}

TEST(TraceWire, UntracedReplyStaysByteIdentical) {
  // The annex is strictly additive: an empty one encodes the exact frame
  // every pre-v5 run produced, so untraced byte counts never move.
  net::Reply msg;
  msg.id = 3;
  std::vector<std::uint8_t> bytes;
  EncodeReply(msg, bytes);
  EXPECT_EQ(bytes.size(), net::kReplyFrameBytes);
  const net::Frame frame = DecodeOne(bytes);
  EXPECT_TRUE(frame.reply.annex.empty());
}

TEST(TraceWire, EncoderClampsAnnexToMaxSpans) {
  net::Reply msg;
  msg.id = 1;
  for (int i = 0; i < 40; ++i) {
    msg.annex.push_back({Stage::kQueue, i});
  }
  std::vector<std::uint8_t> bytes;
  EncodeReply(msg, bytes);
  ASSERT_EQ(bytes.size(), net::kReplyFrameBytes + 1 + net::kMaxAnnexSpans * 9);
  const net::Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.reply.annex.size(), net::kMaxAnnexSpans);
  EXPECT_EQ(frame.reply.annex.front().dur_ns, 0);
}

TEST(TraceWire, MalformedAnnexesAreStickyErrors) {
  net::Reply msg;
  msg.id = 2;
  msg.annex = {{Stage::kQueue, 111}, {Stage::kPrefill, 222}};
  std::vector<std::uint8_t> base;
  EncodeReply(msg, base);

  {
    // Count byte claims more spans than the payload carries.
    std::vector<std::uint8_t> bytes = base;
    bytes[4 + 2 + 33] = 5;
    net::FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    net::Frame frame;
    EXPECT_EQ(decoder.Next(frame), net::FrameDecoder::Result::kError);
    EXPECT_NE(decoder.Error().find("annex"), std::string::npos)
        << decoder.Error();
  }
  {
    // Count byte of zero with annex bytes present: never valid (an empty
    // annex is encoded by omission).
    std::vector<std::uint8_t> bytes = base;
    bytes[4 + 2 + 33] = 0;
    net::FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    net::Frame frame;
    EXPECT_EQ(decoder.Next(frame), net::FrameDecoder::Result::kError);
  }
  {
    // A stage byte past the last defined stage.
    std::vector<std::uint8_t> bytes = base;
    bytes[4 + 2 + 33 + 1] = telemetry::kNumStages;
    net::FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    net::Frame frame;
    EXPECT_EQ(decoder.Next(frame), net::FrameDecoder::Result::kError);
    EXPECT_NE(decoder.Error().find("stage"), std::string::npos)
        << decoder.Error();
  }
  {
    // An annexed payload under a v4 version byte: the annex is v5-only.
    std::vector<std::uint8_t> bytes = base;
    bytes[4] = 4;
    net::FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    net::Frame frame;
    EXPECT_EQ(decoder.Next(frame), net::FrameDecoder::Result::kError);
  }
}

// Fuzz: single-byte corruption of an annexed reply stream either keeps
// decoding well-formed frames or dies sticky — annex validation must never
// let a mangled frame through with out-of-range stages.
TEST(TraceWireFuzz, AnnexedStreamSingleByteCorruptionEitherDecodesOrDies) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 6; ++i) {
    net::Reply r;
    r.id = i;
    r.status = net::ReplyStatus::kOk;
    r.annex = {{Stage::kAccept, 10},
               {Stage::kQueue, 20},
               {Stage::kPrefill, 30}};
    EncodeReply(r, stream);
  }

  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> mutated = stream;
    const std::size_t pos = rng.NextU64() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.NextU64() % 255);

    net::FrameDecoder decoder;
    decoder.Feed(mutated.data(), mutated.size());
    net::Frame frame;
    int frames = 0;
    for (;;) {
      const net::FrameDecoder::Result r = decoder.Next(frame);
      if (r == net::FrameDecoder::Result::kFrame) {
        ++frames;
        for (const StageSpan& span : frame.reply.annex) {
          ASSERT_LT(static_cast<int>(span.stage), telemetry::kNumStages);
        }
        continue;
      }
      break;  // kError (sticky) or kNeedMore (length-field mutation)
    }
    EXPECT_LE(frames, 6);
  }
}

// -------------------------------------------------------------- TraceStages

TEST(TraceStages, StageNamesAreStableAndDistinct) {
  ASSERT_EQ(telemetry::kNumNodeStages, 7);
  ASSERT_EQ(telemetry::kNumStages, 11);
  std::vector<std::string> names;
  for (int s = 0; s < telemetry::kNumStages; ++s) {
    names.emplace_back(telemetry::StageName(static_cast<Stage>(s)));
  }
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // Wire-stable: these indices are on the wire (the annex stage byte).
  EXPECT_EQ(names[0], "accept");
  EXPECT_EQ(names[6], "reply_write");
  EXPECT_EQ(names[7], "router_pending");
  EXPECT_EQ(names[10], "wire");
}

TEST(TraceStages, HeadSamplingIsDeterministicAndProportional) {
  EXPECT_FALSE(telemetry::TraceSampled(123, 0));  // 0 = off
  EXPECT_TRUE(telemetry::TraceSampled(123, 1));   // 1 = everything
  int sampled = 0;
  for (std::uint64_t id = 0; id < 8192; ++id) {
    const bool hit = telemetry::TraceSampled(id, 8);
    EXPECT_EQ(hit, telemetry::TraceSampled(id, 8));  // deterministic
    if (hit) ++sampled;
  }
  // ~1/8 of 8192 = 1024; the splitmix64 hash should land well within 2x.
  EXPECT_GT(sampled, 512);
  EXPECT_LT(sampled, 2048);
}

TEST(TraceStages, ParseTraceSampleSpecs) {
  EXPECT_EQ(ParseTraceSample("off"), 0u);
  EXPECT_EQ(ParseTraceSample("0"), 0u);
  EXPECT_EQ(ParseTraceSample("1"), 1u);
  EXPECT_EQ(ParseTraceSample("1/64"), 64u);
  EXPECT_EQ(ParseTraceSample("64"), 64u);
  EXPECT_THROW(ParseTraceSample("1/0"), std::invalid_argument);
  EXPECT_THROW(ParseTraceSample("fast"), std::invalid_argument);
  EXPECT_THROW(ParseTraceSample("1/64x"), std::invalid_argument);
}

TEST(TraceStages, StageHistogramsExportAndSummarize) {
  telemetry::TelemetrySink sink;
  EXPECT_FALSE(sink.StageMetricsEnabled());
  {
    // Disabled: no arlo_stage_* family, and the summary is the empty
    // object — pre-tracing exports stay unchanged.
    std::ostringstream os;
    sink.WritePrometheus(os);
    EXPECT_EQ(os.str().find("arlo_stage_latency_ns"), std::string::npos);
    std::ostringstream summary;
    sink.WriteStageSummaryJson(summary);
    EXPECT_EQ(summary.str(), "{}");
  }

  sink.EnableStageMetrics(/*include_router=*/false);
  ASSERT_TRUE(sink.StageMetricsEnabled());
  for (int i = 0; i < 10; ++i) {
    sink.RecordStageSpan({Stage::kQueue, 1000 * (i + 1)});
  }
  sink.RecordStageSpan({Stage::kPrefill, 5000});
  // Router stages are not registered on a node sink; recording one is a
  // no-op, not a crash.
  sink.RecordStageSpan({Stage::kWire, 42});

  std::ostringstream os;
  sink.WritePrometheus(os);
  const std::string prom = os.str();
  for (const char* stage :
       {"accept", "admission", "queue", "batch", "prefill", "decode",
        "reply_write"}) {
    // Histograms render as _bucket/_sum/_count series with the stage label.
    EXPECT_NE(prom.find("arlo_stage_latency_ns_count{stage=\"" +
                        std::string(stage) + "\"}"),
              std::string::npos)
        << stage;
  }
  EXPECT_EQ(prom.find("stage=\"wire\""), std::string::npos);

  std::ostringstream summary;
  sink.WriteStageSummaryJson(summary);
  const std::string json = summary.str();
  EXPECT_NE(json.find("\"queue\":{\"count\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"prefill\":{\"count\":1"), std::string::npos);

  // Idempotent: a second enable (e.g. server restart) must not duplicate
  // the family, and widening to router stages only adds the new ones.
  sink.EnableStageMetrics(/*include_router=*/true);
  std::ostringstream os2;
  sink.WritePrometheus(os2);
  EXPECT_NE(os2.str().find("stage=\"wire\""), std::string::npos);
}

TEST(TraceStages, TimelineEmitsNestedChromeSpans) {
  telemetry::TelemetryConfig tc;
  tc.trace_requests = true;
  telemetry::TelemetrySink sink(tc);
  sink.EnableStageMetrics(/*include_router=*/true);

  const std::vector<StageSpan> spans = {{Stage::kRouterPending, 100},
                                        {Stage::kRouterPick, 50},
                                        {Stage::kQueue, 500},
                                        {Stage::kWire, 350}};
  sink.RecordStageTimeline(/*request_id=*/99, spans, /*e2e_ns=*/1000,
                           /*base_ts_ns=*/5000);

  std::ostringstream os;
  sink.Tracer().WriteJson(os);
  const std::string json = os.str();
  // One parent "request" span plus one child per stage, all in the "trace"
  // category on a dedicated lane, children tiled inside the parent.
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"router_pending\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wire\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"trace\""), std::string::npos);
}

TEST(TraceStages, DroppedTraceEventsExportAsCounter) {
  telemetry::TelemetryConfig tc;
  tc.trace_requests = true;
  tc.max_trace_events = 4;
  telemetry::TelemetrySink sink(tc);
  for (int i = 0; i < 10; ++i) {
    sink.Tracer().Instant("evt", "test", i, 0);
  }
  ASSERT_EQ(sink.Tracer().Dropped(), 6u);

  std::ostringstream os;
  sink.WritePrometheus(os);
  EXPECT_NE(os.str().find("arlo_trace_dropped_total 6"), std::string::npos)
      << os.str();
  // The sync is a delta-add: a second export must not double-count.
  std::ostringstream os2;
  sink.WritePrometheus(os2);
  EXPECT_NE(os2.str().find("arlo_trace_dropped_total 6"), std::string::npos);
}

// ------------------------------------------------------------- TraceCluster

trace::Trace StableTrace(double rate, double duration_s, std::uint64_t seed) {
  trace::TwitterTraceConfig config;
  config.duration_s = duration_s;
  config.mean_rate = rate;
  config.pattern = trace::TwitterTraceConfig::Pattern::kStable;
  config.seed = seed;
  return trace::SynthesizeTwitterTrace(config);
}

/// One real backend node (scheme + testbed + wire server) for router tests.
struct RealNode {
  std::unique_ptr<sim::Scheme> scheme;
  std::unique_ptr<serving::LiveTestbed> testbed;
  std::unique_ptr<net::Server> server;

  RealNode() {
    baselines::ScenarioConfig config;
    config.gpus = 1;
    scheme = baselines::MakeSchemeByName("st", config);
    testbed = std::make_unique<serving::LiveTestbed>(*scheme,
                                                     serving::TestbedConfig{});
    testbed->Start();
    server = std::make_unique<net::Server>(*testbed, net::ServerConfig{});
    server->Start();
  }

  ~RealNode() {
    server->Stop();
    (void)testbed->Finish();
  }

  cluster::NodeEndpoint Endpoint() const { return {"", server->Port(), 0}; }
};

// The headline integration claim: with the router sampling every request,
// every reply's assembled timeline covers both hops — the four router-side
// spans plus all seven node stages, each exactly once, in pipeline order —
// and the spans sum to (within measurement slack, below) the latency the
// client itself observed.
TEST(TraceCluster, TimelineSurvivesRouterHopAndSumsToE2e) {
  std::vector<std::unique_ptr<RealNode>> nodes;
  for (int i = 0; i < 2; ++i) nodes.push_back(std::make_unique<RealNode>());

  telemetry::TelemetryConfig tc;
  tc.concurrency = telemetry::Concurrency::kMultiThreaded;
  telemetry::TelemetrySink sink(tc);

  cluster::RouterConfig rc;
  rc.policy = "least-inflight";
  for (const auto& node : nodes) rc.nodes.push_back(node->Endpoint());
  rc.sink = &sink;
  rc.trace_sample_n = 1;  // trace everything
  cluster::Router router(rc);
  router.Start();

  const trace::Trace t = StableTrace(150.0, 1.0, 17);
  net::LoadGeneratorConfig lg;
  lg.port = router.Port();
  lg.connections = 2;
  const net::LoadGeneratorResult result = RunLoadGenerator(t, lg);

  EXPECT_EQ(result.Lost(), 0u);
  ASSERT_EQ(result.CountByStatus(net::ReplyStatus::kOk), t.Size());

  // Pipeline order of a full cross-hop timeline.
  const std::vector<Stage> expected = {
      Stage::kRouterPending, Stage::kRouterPick, Stage::kRouterRetry,
      Stage::kAccept,        Stage::kAdmission,  Stage::kQueue,
      Stage::kBatch,         Stage::kPrefill,    Stage::kDecode,
      Stage::kReplyWrite,    Stage::kWire};

  std::vector<double> rel_gap;
  for (const auto& r : result.requests) {
    ASSERT_TRUE(r.replied);
    ASSERT_EQ(r.annex.size(), expected.size()) << "request " << r.id;
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // Exactly once each, in order: duration-only spans tile by
      // construction, so order + uniqueness is the non-overlap proof.
      EXPECT_EQ(r.annex[i].stage, expected[i]) << "request " << r.id;
      EXPECT_GE(r.annex[i].dur_ns, 0);
      sum += r.annex[i].dur_ns;
    }
    EXPECT_GT(sum, 0) << "request " << r.id;
    // The timeline sums to the router-observed e2e; the client additionally
    // sees its own socket hop to the router, so the client latency is the
    // upper bound the sum approaches from below.
    const double latency = static_cast<double>(r.latency);
    if (latency > 0.0) {
      rel_gap.push_back(
          std::abs(latency - static_cast<double>(sum)) / latency);
    }
  }
  // Median relative gap within 5%: the assembled timeline accounts for the
  // client-observed latency up to the client<->router socket itself.
  ASSERT_FALSE(rel_gap.empty());
  std::sort(rel_gap.begin(), rel_gap.end());
  EXPECT_LT(rel_gap[rel_gap.size() / 2], 0.05);

  // The router's sink saw the stage family, router stages included.
  std::ostringstream os;
  sink.WritePrometheus(os);
  EXPECT_NE(os.str().find("arlo_stage_latency_ns_count{stage=\"wire\"}"),
            std::string::npos);
  EXPECT_NE(os.str().find("arlo_stage_latency_ns_count{stage=\"prefill\"}"),
            std::string::npos);

  router.Stop();
}

// The client's own trace flag survives the hop even when the router itself
// samples nothing; with both off, no reply carries an annex.
TEST(TraceCluster, ClientOptInIsHonoredAndOffMeansOff) {
  RealNode node;
  telemetry::TelemetryConfig tc;
  tc.concurrency = telemetry::Concurrency::kMultiThreaded;
  telemetry::TelemetrySink sink(tc);

  cluster::RouterConfig rc;
  rc.policy = "rr";
  rc.nodes = {node.Endpoint()};
  rc.sink = &sink;
  rc.trace_sample_n = 0;  // router samples nothing
  cluster::Router router(rc);
  router.Start();

  const trace::Trace t = StableTrace(100.0, 0.5, 23);
  {
    net::LoadGeneratorConfig lg;
    lg.port = router.Port();
    lg.trace_sample_n = 1;  // client opts every request in
    const net::LoadGeneratorResult result = RunLoadGenerator(t, lg);
    ASSERT_EQ(result.Lost(), 0u);
    for (const auto& r : result.requests) {
      if (r.replied && r.status == net::ReplyStatus::kOk) {
        EXPECT_FALSE(r.annex.empty()) << "request " << r.id;
      }
    }
  }
  {
    net::LoadGeneratorConfig lg;
    lg.port = router.Port();
    lg.trace_sample_n = 0;
    const net::LoadGeneratorResult result = RunLoadGenerator(t, lg);
    ASSERT_EQ(result.Lost(), 0u);
    for (const auto& r : result.requests) {
      EXPECT_TRUE(r.annex.empty()) << "request " << r.id;
    }
  }

  router.Stop();
}

// Direct node tracing without a router: the annex carries exactly the seven
// node stages and lands in the node's own arlo_stage_* histograms.
TEST(TraceCluster, DirectNodeAnnexCarriesSevenStages) {
  baselines::ScenarioConfig config;
  config.gpus = 1;
  auto scheme = baselines::MakeSchemeByName("st", config);
  telemetry::TelemetryConfig tc;
  tc.concurrency = telemetry::Concurrency::kMultiThreaded;
  telemetry::TelemetrySink sink(tc);
  serving::TestbedConfig tb;
  tb.telemetry = &sink;
  serving::LiveTestbed testbed(*scheme, tb);
  testbed.Start();
  net::ServerConfig sc;
  sc.telemetry = &sink;
  net::Server server(testbed, sc);
  server.Start();

  const trace::Trace t = StableTrace(100.0, 0.5, 29);
  net::LoadGeneratorConfig lg;
  lg.port = server.Port();
  lg.trace_sample_n = 1;
  const net::LoadGeneratorResult result = RunLoadGenerator(t, lg);
  ASSERT_EQ(result.Lost(), 0u);

  for (const auto& r : result.requests) {
    ASSERT_TRUE(r.replied);
    if (r.status != net::ReplyStatus::kOk) continue;
    ASSERT_EQ(r.annex.size(),
              static_cast<std::size_t>(telemetry::kNumNodeStages));
    for (int s = 0; s < telemetry::kNumNodeStages; ++s) {
      EXPECT_EQ(r.annex[static_cast<std::size_t>(s)].stage,
                static_cast<Stage>(s));
    }
    EXPECT_EQ(r.annex.back().stage, Stage::kReplyWrite);
  }

  server.Stop();
  (void)testbed.Finish();

  std::ostringstream os;
  sink.WritePrometheus(os);
  const std::string prom = os.str();
  EXPECT_NE(prom.find("arlo_stage_latency_ns_count{stage=\"queue\"}"),
            std::string::npos);
  // A node sink never registers router stages.
  EXPECT_EQ(prom.find("stage=\"router_pick\""), std::string::npos);
}

// --------------------------------------------------------------- TraceProbe

const char* kGoodStatusz =
    "{\"time_s\":2.5,\"submitted\":120,\"completed\":100,\"inflight\":15,"
    "\"buffered\":5,\"live_workers\":3,\"peak_workers\":4,"
    "\"est_queue_delay_ns\":7500000,"
    "\"batches\":{\"formed\":10,\"timeouts\":1},"
    "\"workers\":["
    "{\"id\":0,\"runtime\":1,\"state\":\"ready\",\"max_length\":512,"
    "\"queued\":2,\"executing\":1}],"
    "\"scheme\":{\"allocation\":[1,1]}}";

TEST(TraceProbe, ValidStatuszParses) {
  obs::NodeProbe probe;
  ASSERT_TRUE(obs::ParseStatusz(kGoodStatusz, probe));
  EXPECT_EQ(probe.submitted, 120);
  EXPECT_EQ(probe.ready_worker_max_lengths, (std::vector<int>{512}));
}

TEST(TraceProbe, TruncatedStatuszIsRejectedAtomically) {
  const std::string body(kGoodStatusz);
  // Every strict prefix is a truncated scrape; none may parse, and a failed
  // parse must leave the probe untouched.
  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{20}, std::size_t{80}, body.size() - 1}) {
    obs::NodeProbe probe;
    probe.submitted = -7;  // sentinel
    EXPECT_FALSE(obs::ParseStatusz(body.substr(0, cut), probe)) << cut;
    EXPECT_EQ(probe.submitted, -7) << "partial parse leaked at cut " << cut;
    EXPECT_TRUE(probe.ready_worker_max_lengths.empty());
  }
}

TEST(TraceProbe, MalformedPayloadsAreRejected) {
  obs::NodeProbe probe;
  EXPECT_FALSE(obs::ParseStatusz("", probe));
  EXPECT_FALSE(obs::ParseStatusz("null", probe));
  EXPECT_FALSE(obs::ParseStatusz("[1,2,3]", probe));
  EXPECT_FALSE(obs::ParseStatusz("<html>502 Bad Gateway</html>", probe));
  // Trailing garbage after a complete object: not one JSON document.
  EXPECT_FALSE(
      obs::ParseStatusz(std::string(kGoodStatusz) + "{\"x\":1}", probe));
  // Balanced but missing the core fields every node statusz carries.
  EXPECT_FALSE(obs::ParseStatusz("{\"time_s\":1.0,\"submitted\":3}", probe));
  // Braces inside strings must not fool the balance check.
  obs::NodeProbe ok;
  std::string tricky(kGoodStatusz);
  tricky.insert(1, "\"note\":\"{[\\\"}\",");
  EXPECT_TRUE(obs::ParseStatusz(tricky, ok));
}

TEST(TraceProbe, WorkerlessStatuszStillParses) {
  // A body with the core fields but no workers array: valid (a node with
  // no workers yet), parsing to an empty profile rather than failing.
  obs::NodeProbe probe;
  ASSERT_TRUE(obs::ParseStatusz(
      "{\"time_s\":0.1,\"submitted\":0,\"completed\":0,\"inflight\":0,"
      "\"buffered\":0,\"live_workers\":0,\"est_queue_delay_ns\":0}",
      probe));
  EXPECT_TRUE(probe.ready_worker_max_lengths.empty());
}

}  // namespace
}  // namespace arlo
