#include "trace/twitter.h"

#include <gtest/gtest.h>

namespace arlo::trace {
namespace {

TEST(RateTrack, ConstantTrackStats) {
  const RateTrack t = MakeConstantTrack(100.0, 60.0);
  EXPECT_EQ(t.per_second.size(), 60u);
  EXPECT_DOUBLE_EQ(t.MeanRate(), 100.0);
  EXPECT_DOUBLE_EQ(t.PeakRate(), 100.0);
}

TEST(RateTrack, ConstantTrackWithNoiseStaysNearMean) {
  const RateTrack t = MakeConstantTrack(100.0, 600.0, 0.1, 3);
  EXPECT_NEAR(t.MeanRate(), 100.0, 2.0);
  EXPECT_LE(t.PeakRate(), 110.0 + 1e-9);
}

TEST(RateTrack, SinusoidOscillates) {
  const RateTrack t = MakeSinusoidTrack(100.0, 120.0, 0.5, 60.0);
  EXPECT_NEAR(t.MeanRate(), 100.0, 3.0);
  EXPECT_GT(t.PeakRate(), 140.0);
}

TEST(RateTrack, SpikyTrackHasSpikes) {
  const RateTrack t = MakeSpikyTrack(100.0, 300.0, 3.0, 20.0, 60.0, 7);
  EXPECT_GT(t.PeakRate(), 250.0);
  EXPECT_GT(t.MeanRate(), 100.0);  // spikes add load
}

TEST(SynthesizeTwitterTrace, SizeTracksRateAndDuration) {
  TwitterTraceConfig config;
  config.duration_s = 30.0;
  config.mean_rate = 200.0;
  config.seed = 1;
  const Trace t = SynthesizeTwitterTrace(config);
  EXPECT_NEAR(static_cast<double>(t.Size()), 6000.0, 400.0);
  EXPECT_LE(t.Duration(), Seconds(30.0));
}

TEST(SynthesizeTwitterTrace, LengthsWithinConfiguredMax) {
  TwitterTraceConfig config;
  config.duration_s = 20.0;
  config.mean_rate = 100.0;
  config.max_length = 125;
  config.seed = 2;
  const Trace t = SynthesizeTwitterTrace(config);
  for (const auto& r : t.Requests()) {
    EXPECT_GE(r.length, 1);
    EXPECT_LE(r.length, 125);
  }
}

TEST(SynthesizeTwitterTrace, DeterministicInSeed) {
  TwitterTraceConfig config;
  config.duration_s = 10.0;
  config.mean_rate = 50.0;
  config.seed = 42;
  const Trace a = SynthesizeTwitterTrace(config);
  const Trace b = SynthesizeTwitterTrace(config);
  ASSERT_EQ(a.Size(), b.Size());
  for (std::size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.Requests()[i].arrival, b.Requests()[i].arrival);
    EXPECT_EQ(a.Requests()[i].length, b.Requests()[i].length);
  }
  config.seed = 43;
  const Trace c = SynthesizeTwitterTrace(config);
  EXPECT_NE(a.Size(), c.Size());
}

TEST(SynthesizeTwitterTrace, BurstyHasHigherDispersionThanStable) {
  TwitterTraceConfig config;
  config.duration_s = 300.0;
  config.mean_rate = 100.0;
  config.seed = 3;
  auto dispersion = [](const Trace& t, double duration_s) {
    std::vector<int> counts(static_cast<std::size_t>(duration_s), 0);
    for (const auto& r : t.Requests()) {
      const auto bucket = static_cast<std::size_t>(ToSeconds(r.arrival));
      if (bucket < counts.size()) ++counts[bucket];
    }
    double sum = 0.0, sq = 0.0;
    for (int c : counts) {
      sum += c;
      sq += static_cast<double>(c) * c;
    }
    const double mean = sum / static_cast<double>(counts.size());
    const double var = sq / static_cast<double>(counts.size()) - mean * mean;
    return var / mean;
  };
  config.pattern = TwitterTraceConfig::Pattern::kStable;
  const double d_stable = dispersion(SynthesizeTwitterTrace(config), 300.0);
  config.pattern = TwitterTraceConfig::Pattern::kBursty;
  const double d_bursty = dispersion(SynthesizeTwitterTrace(config), 300.0);
  EXPECT_GT(d_bursty, d_stable * 1.5);
}

// Fig. 1 reproduction: the long-term (full-trace) p98 exceeds the typical
// short-window p98 because the short/long mix drifts over time.
TEST(SynthesizeTwitterTrace, ShortWindowsDeviateFromLongTerm) {
  TwitterTraceConfig config;
  config.duration_s = 600.0;
  config.mean_rate = 300.0;
  config.max_length = 125;
  config.seed = 4;
  config.drift_amplitude = 0.5;
  const Trace t = SynthesizeTwitterTrace(config);

  const Histogram global = t.LengthHistogram(125);
  const int global_p98 = global.Quantile(0.98);

  // p98 across 10-second windows varies notably around the global value.
  double min_p98 = 1e9, max_p98 = 0.0;
  for (double start = 0.0; start + 10.0 <= 600.0; start += 50.0) {
    const Trace window = t.Slice(Seconds(start), Seconds(start + 10.0));
    if (window.Size() < 100) continue;
    const double p98 = window.LengthHistogram(125).Quantile(0.98);
    min_p98 = std::min(min_p98, p98);
    max_p98 = std::max(max_p98, p98);
  }
  EXPECT_LT(min_p98, global_p98 - 4);  // some windows are much lighter
  EXPECT_GT(max_p98 - min_p98, 6.0);   // real spread across windows
}

TEST(SynthesizeTwitterTrace, ExternalRateTrackOverridesMeanRate) {
  TwitterTraceConfig config;
  config.duration_s = 20.0;
  config.mean_rate = 9999.0;  // must be ignored
  config.rate_track = MakeConstantTrack(10.0, 20.0);
  config.seed = 5;
  const Trace t = SynthesizeTwitterTrace(config);
  EXPECT_NEAR(static_cast<double>(t.Size()), 200.0, 60.0);
}

}  // namespace
}  // namespace arlo::trace
